package core

import (
	"fmt"

	"blackswan/internal/colstore"
	"blackswan/internal/rdf"
	"blackswan/internal/rel"
)

// ColVert is the vertically-partitioned scheme on the column-store engine:
// one two-column (subject, object) table per property, sorted on SO, with
// the subject column compressed — the "MonetDB vert SO" rows of Tables 6
// and 7 and (under the PageAtATime engine profile, restricted to the 28
// interesting properties) the C-Store configuration of Section 3.
type ColVert struct {
	eng    *colstore.Engine
	cat    Catalog
	tables map[rdf.ID]*colstore.Table
	// loaded is the property list actually materialized (all properties
	// for MonetDB, the 28 interesting ones for the C-Store profile).
	loaded []rdf.ID
	label  string
}

// LoadColVert loads one table per property in cat.AllProps.
func LoadColVert(eng *colstore.Engine, g *rdf.Graph, cat Catalog) (*ColVert, error) {
	return loadColVert(eng, g, cat, cat.AllProps, "MonetDB/vert-SO")
}

// LoadColVertRestricted loads only the interesting properties, as the
// original C-Store experiment did ("C-Store is loaded with data associated
// with 28 properties, hence the small size").
func LoadColVertRestricted(eng *colstore.Engine, g *rdf.Graph, cat Catalog) (*ColVert, error) {
	return loadColVert(eng, g, cat, cat.Interesting, "C-Store/vert-SO")
}

func loadColVert(eng *colstore.Engine, g *rdf.Graph, cat Catalog, props []rdf.ID, label string) (*ColVert, error) {
	if err := cat.Validate(); err != nil {
		return nil, err
	}
	want := make(map[rdf.ID]bool, len(props))
	for _, p := range props {
		want[p] = true
	}
	// Partition and sort each table on (subject, object).
	parts := make(map[rdf.ID][]rdf.Triple)
	for _, t := range g.Triples {
		if want[t.P] {
			parts[t.P] = append(parts[t.P], t)
		}
	}
	d := &ColVert{eng: eng, cat: cat, tables: make(map[rdf.ID]*colstore.Table, len(props)), loaded: props, label: label}
	for _, p := range props {
		ts := parts[p]
		rdf.SOP.Sort(ts) // SO order; the trailing P is constant
		rows := rel.NewCap(2, len(ts))
		for _, t := range ts {
			rows.Data = append(rows.Data, uint64(t.S), uint64(t.O))
		}
		tb, err := eng.CreateTable(fmt.Sprintf("prop_%d", p), rows, true)
		if err != nil {
			return nil, err
		}
		d.tables[p] = tb
	}
	return d, nil
}

// Label implements Database.
func (d *ColVert) Label() string { return d.label }

// table returns the partition for p, or an error when the property was not
// loaded (the C-Store restriction).
func (d *ColVert) table(p rdf.ID) (*colstore.Table, error) {
	t, ok := d.tables[p]
	if !ok {
		return nil, fmt.Errorf("core: property %d not loaded in %s", p, d.label)
	}
	return t, nil
}

func (d *ColVert) sCol(p rdf.ID) (*colstore.Column, error) {
	t, err := d.table(p)
	if err != nil {
		return nil, err
	}
	return t.Cols[0], nil
}

func (d *ColVert) oCol(p rdf.ID) (*colstore.Column, error) {
	t, err := d.table(p)
	if err != nil {
		return nil, err
	}
	return t.Cols[1], nil
}

// props returns the property list for q, failing if any is unavailable.
func (d *ColVert) props(q Query) ([]rdf.ID, error) {
	ps := d.cat.props(q)
	for _, p := range ps {
		if _, ok := d.tables[p]; !ok {
			return nil, fmt.Errorf("core: %v needs property %d, not loaded in %s", q, p, d.label)
		}
	}
	return ps, nil
}

// Run implements Database.
func (d *ColVert) Run(q Query) (*rel.Rel, error) {
	if !q.Valid() {
		return nil, fmt.Errorf("core: invalid query %v", q)
	}
	switch q.ID {
	case Q1:
		return d.q1()
	case Q2:
		return d.q2(q)
	case Q3:
		return d.q3(q)
	case Q4:
		return d.q4(q)
	case Q5:
		return d.q5()
	case Q6:
		return d.q6(q)
	case Q7:
		return d.q7()
	case Q8:
		return d.q8()
	default:
		return nil, fmt.Errorf("core: unreachable query %v", q)
	}
}

// textSubjects returns the subjects typed <Text> (object column is
// unsorted, so this is a scan of the type table's object column).
func (d *ColVert) textSubjects() ([]uint64, error) {
	c := d.cat.Consts
	oc, err := d.oCol(c.Type)
	if err != nil {
		return nil, err
	}
	sc, _ := d.sCol(c.Type)
	pos := d.eng.SelectEq(oc, uint64(c.Text))
	return d.eng.Fetch(sc, pos), nil
}

func (d *ColVert) q1() (*rel.Rel, error) {
	oc, err := d.oCol(d.cat.Consts.Type)
	if err != nil {
		return nil, err
	}
	return d.eng.GroupCount(d.eng.FetchAll(oc)), nil
}

func (d *ColVert) q2(q Query) (*rel.Rel, error) {
	ps, err := d.props(q)
	if err != nil {
		return nil, err
	}
	sA, err := d.textSubjects()
	if err != nil {
		return nil, err
	}
	aSet := d.eng.BuildSet(sA)
	out := rel.New(2)
	for _, p := range ps {
		sc, _ := d.sCol(p)
		sel := d.eng.SemiJoin(d.eng.FetchAll(sc), aSet)
		if n := len(sel); n > 0 {
			out.Append(uint64(p), uint64(n))
		}
	}
	out.Sort()
	return out, nil
}

func (d *ColVert) q3(q Query) (*rel.Rel, error) {
	ps, err := d.props(q)
	if err != nil {
		return nil, err
	}
	sA, err := d.textSubjects()
	if err != nil {
		return nil, err
	}
	aSet := d.eng.BuildSet(sA)
	out := rel.New(3)
	for _, p := range ps {
		sc, _ := d.sCol(p)
		oc, _ := d.oCol(p)
		sel := d.eng.SemiJoin(d.eng.FetchAll(sc), aSet)
		if len(sel) == 0 {
			continue
		}
		g := d.eng.GroupCount(d.eng.GatherVals(d.eng.FetchAll(oc), sel))
		g = d.eng.HavingGT(g, 1, 1)
		for i := 0; i < g.Len(); i++ {
			row := g.Row(i)
			out.Append(uint64(p), row[0], row[1])
		}
	}
	out.Sort()
	return out, nil
}

func (d *ColVert) q4(q Query) (*rel.Rel, error) {
	c := d.cat.Consts
	ps, err := d.props(q)
	if err != nil {
		return nil, err
	}
	sA, err := d.textSubjects()
	if err != nil {
		return nil, err
	}
	aSet := d.eng.BuildSet(sA)
	loc, err := d.oCol(c.Language)
	if err != nil {
		return nil, err
	}
	lsc, _ := d.sCol(c.Language)
	french := d.eng.Fetch(lsc, d.eng.SelectEq(loc, uint64(c.French)))
	out := rel.New(3)
	for _, p := range ps {
		sc, _ := d.sCol(p)
		oc, _ := d.oCol(p)
		sAll := d.eng.FetchAll(sc)
		sel := d.eng.SemiJoin(sAll, aSet)
		if len(sel) == 0 {
			continue
		}
		sSel := d.eng.GatherVals(sAll, sel)
		oSel := d.eng.GatherVals(d.eng.FetchAll(oc), sel)
		lp, _ := d.eng.HashJoin(sSel, french)
		if len(lp) == 0 {
			continue
		}
		g := d.eng.GroupCount(d.eng.GatherVals(oSel, lp))
		g = d.eng.HavingGT(g, 1, 1)
		for i := 0; i < g.Len(); i++ {
			row := g.Row(i)
			out.Append(uint64(p), row[0], row[1])
		}
	}
	out.Sort()
	return out, nil
}

func (d *ColVert) q5() (*rel.Rel, error) {
	c := d.cat.Consts
	ooc, err := d.oCol(c.Origin)
	if err != nil {
		return nil, err
	}
	osc, _ := d.sCol(c.Origin)
	aSet := d.eng.BuildSet(d.eng.Fetch(osc, d.eng.SelectEq(ooc, uint64(c.DLC))))

	rsc, err := d.sCol(c.Records)
	if err != nil {
		return nil, err
	}
	roc, _ := d.oCol(c.Records)
	sR := d.eng.FetchAll(rsc)
	oR := d.eng.FetchAll(roc)
	selB := d.eng.SemiJoin(sR, aSet)
	sB := d.eng.GatherVals(sR, selB)
	oB := d.eng.GatherVals(oR, selB)

	tsc, _ := d.sCol(c.Type)
	toc, _ := d.oCol(c.Type)
	posC := d.eng.SelectNe(toc, uint64(c.Text))
	sC := d.eng.Fetch(tsc, posC)
	oC := d.eng.Fetch(toc, posC)

	lb, lc := d.eng.HashJoin(oB, sC)
	bs := d.eng.GatherVals(sB, lb)
	co := d.eng.GatherVals(oC, lc)
	out := rel.NewCap(2, len(bs))
	for i := range bs {
		out.Data = append(out.Data, bs[i], co[i])
	}
	return out, nil
}

func (d *ColVert) q6(q Query) (*rel.Rel, error) {
	c := d.cat.Consts
	ps, err := d.props(q)
	if err != nil {
		return nil, err
	}
	u1, err := d.textSubjects()
	if err != nil {
		return nil, err
	}
	rsc, err := d.sCol(c.Records)
	if err != nil {
		return nil, err
	}
	roc, _ := d.oCol(c.Records)
	oR := d.eng.FetchAll(roc)
	sR := d.eng.FetchAll(rsc)
	selR := d.eng.SemiJoin(oR, d.eng.BuildSet(u1))
	u2 := d.eng.GatherVals(sR, selR)
	uSet := d.eng.BuildSet(d.eng.Distinct(d.eng.Union(u1, u2)))

	out := rel.New(2)
	for _, p := range ps {
		sc, _ := d.sCol(p)
		sel := d.eng.SemiJoin(d.eng.FetchAll(sc), uSet)
		if n := len(sel); n > 0 {
			out.Append(uint64(p), uint64(n))
		}
	}
	out.Sort()
	return out, nil
}

func (d *ColVert) q7() (*rel.Rel, error) {
	c := d.cat.Consts
	poc, err := d.oCol(c.Point)
	if err != nil {
		return nil, err
	}
	psc, _ := d.sCol(c.Point)
	sA := d.eng.Fetch(psc, d.eng.SelectEq(poc, uint64(c.End))) // ascending: table is SO-sorted

	esc, err := d.sCol(c.Encoding)
	if err != nil {
		return nil, err
	}
	eoc, _ := d.oCol(c.Encoding)
	sB := d.eng.FetchAll(esc)
	oB := d.eng.FetchAll(eoc)
	// Subject columns are sorted, so subject-subject joins are the linear
	// merge joins the paper credits the vertical scheme with.
	la, lb := d.eng.MergeJoin(sA, sB)
	sAB := d.eng.GatherVals(sA, la)
	oAB := d.eng.GatherVals(oB, lb)

	tsc, _ := d.sCol(c.Type)
	toc, _ := d.oCol(c.Type)
	sC := d.eng.FetchAll(tsc)
	oC := d.eng.FetchAll(toc)
	l2, rc := d.eng.MergeJoin(sAB, sC)

	s3 := d.eng.GatherVals(sAB, l2)
	b3 := d.eng.GatherVals(oAB, l2)
	c3 := d.eng.GatherVals(oC, rc)
	out := rel.NewCap(3, len(s3))
	for i := range s3 {
		out.Data = append(out.Data, s3[i], b3[i], c3[i])
	}
	return out, nil
}

func (d *ColVert) q8() (*rel.Rel, error) {
	c := d.cat.Consts
	// q8 inherently iterates every property table; the restricted C-Store
	// load cannot answer it, exactly as the original code base could not.
	ps, err := d.props(Query{ID: Q8})
	if err != nil {
		return nil, err
	}
	// Phase 1: select the objects of <conferences> in each table (subject
	// columns are sorted: binary search), union into the temporary t.
	var parts [][]uint64
	for _, p := range ps {
		sc, _ := d.sCol(p)
		oc, _ := d.oCol(p)
		pos := d.eng.SelectEq(sc, uint64(c.Conferences))
		if len(pos) > 0 {
			parts = append(parts, d.eng.Fetch(oc, pos))
		}
	}
	objs := d.eng.Union(parts...)
	// Phase 2: join t back on objects — no clustering helps here ("a query
	// which joins on objects will not allow the use of a fast merge join").
	out := rel.New(1)
	for _, p := range ps {
		sc, _ := d.sCol(p)
		oc, _ := d.oCol(p)
		oAll := d.eng.FetchAll(oc)
		_, rp := d.eng.HashJoin(objs, oAll)
		if len(rp) == 0 {
			continue
		}
		subj := d.eng.GatherVals(d.eng.FetchAll(sc), rp)
		subj = d.eng.FilterVecNe(subj, uint64(c.Conferences))
		for _, s := range subj {
			out.Data = append(out.Data, s)
		}
	}
	return out, nil
}
