package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"blackswan/internal/rdf"
	"blackswan/internal/rel"
)

// This file is the streaming executor: the same logical plans as exec.go,
// lowered onto pull-based batched iterators instead of operator-at-a-time
// materialization. Operators exchange fixed-size row batches, pipelines run
// without materialization barriers (only hash builds, grouping and full
// sorts buffer), and TopN/LIMIT propagate early termination upstream by
// closing their inputs — which reaches all the way into the physical scans,
// so a LIMIT-10 plan stops paying simulated I/O after ten rows.
//
// The contract with the materializing executor is result byte-identity:
// every streaming operator replicates the materializing operator's output
// row order exactly, so the concatenation of the emitted batches equals the
// materializing result on every scheme. Simulated charges agree when a plan
// is fully drained (the per-row rates below are the engines' own), and
// deliberately diverge where the execution strategy genuinely differs: a
// bounded-heap TopN charges n·ceil(log2 k) comparisons instead of a full
// sort's n·ceil(log2 n), an early-terminated scan never pays for the leaves
// and column ranges it did not read, and column I/O is requested in
// read-ahead windows instead of one bulk range.

// DefaultBatchRows is the streaming batch size when ExecOptions.BatchRows
// is zero: large enough to amortize per-batch dispatch, small enough that a
// pipeline's in-flight state stays a few tens of kilobytes per edge.
const DefaultBatchRows = 1024

// StreamOps is the per-row charge vocabulary an engine supplies to the
// streaming operators. The operators themselves live here, engine-agnostic;
// each call charges n rows (of width w, where the engine's cost model cares)
// at the engine's own rate for that operator class, so a fully drained
// streaming plan charges what the materializing operators would. An engine
// whose PhysicalOps does not implement StreamOps silently falls back to the
// materializing executor.
type StreamOps interface {
	// StreamNode charges one operator dispatch (plan-node startup).
	StreamNode()
	// StreamScanRows charges emitting n scanned rows of width w.
	StreamScanRows(n, w int)
	// StreamFilterRows charges n predicate evaluations over width-w rows.
	StreamFilterRows(n, w int)
	// StreamHashBuildRows charges inserting n rows into a join hash table.
	StreamHashBuildRows(n, w int)
	// StreamHashProbeRows charges probing n rows against a hash table.
	StreamHashProbeRows(n, w int)
	// StreamMergeRows charges advancing n rows through a merge join.
	StreamMergeRows(n, w int)
	// StreamUnionRows charges moving n rows of width w through a union.
	StreamUnionRows(n, w int)
	// StreamDistinctRows charges deduplicating n rows of width w.
	StreamDistinctRows(n, w int)
	// StreamRestrictRows charges testing n rows against the interesting-
	// properties restriction (a hash semijoin on the row engine, a set
	// filter on the column engine — each engine supplies its materializing
	// operator's rate).
	StreamRestrictRows(n, w int)
	// StreamGroupRows charges aggregating n rows under keys grouping columns.
	StreamGroupRows(n, keys int)
	// StreamJoinEmitRows charges materializing n join output rows of width w.
	StreamJoinEmitRows(n, w int)
	// StreamEmitRows charges moving n finished rows into an output buffer.
	StreamEmitRows(n, w int)
	// StreamSortCompares charges n sort comparisons (ORDER BY / heap TopN).
	StreamSortCompares(n int64)
}

// RelIter is the pull contract of a streaming physical scan: Next returns
// the next non-empty batch or nil when exhausted; Close releases the scan
// early (abandoning it is the early-termination protocol — an engine scan
// holds no resources, it simply stops charging).
type RelIter interface {
	Next() (*rel.Rel, error)
	Close()
}

// StreamSource is the optional scheme extension the streaming executor
// prefers over ScanProp/ScanTriples: the same rows in the same order,
// delivered batch by batch so consumers that stop early save the tail's
// simulated I/O. Schemes that do not implement it still stream — their
// scans materialize first and are re-chunked.
type StreamSource interface {
	// StreamProp is the pull form of ScanProp (width-2 batches).
	StreamProp(p, s, o rdf.ID, need ScanCols, batchRows int) (RelIter, error)
	// StreamTriples is the pull form of ScanTriples (width-3 batches).
	StreamTriples(s, o rdf.ID, need ScanCols, batchRows int) RelIter
}

// memTracker tracks live intermediate-result bytes. Atomics, not a plain
// counter: the parallel fan-out's prefetch workers allocate batches
// concurrently with the consuming pipeline.
type memTracker struct {
	cur  atomic.Int64
	peak atomic.Int64
}

func (m *memTracker) alloc(n int64) {
	if n <= 0 {
		return
	}
	c := m.cur.Add(n)
	for {
		p := m.peak.Load()
		if c <= p || m.peak.CompareAndSwap(p, c) {
			return
		}
	}
}

func (m *memTracker) free(n int64) {
	if n > 0 {
		m.cur.Add(-n)
	}
}

func (m *memTracker) peakBytes() int64 { return m.peak.Load() }

// current returns the live bytes right now — the profiler samples it at
// operator boundaries for per-node peak attribution.
func (m *memTracker) current() int64 { return m.cur.Load() }

// relBytes is the tracked size of a relation: its row data.
func relBytes(r *rel.Rel) int64 {
	if r == nil {
		return 0
	}
	return int64(len(r.Data)) * 8
}

// ceilLog2 returns ⌈log₂ n⌉ (0 for n < 2).
func ceilLog2(n int) int64 {
	if n < 2 {
		return 0
	}
	lg := int64(0)
	for m := n - 1; m > 0; m >>= 1 {
		lg++
	}
	return lg
}

// sortCompares is the comparison count both engines charge for a full sort
// of n rows: n·⌈log₂ n⌉.
func sortCompares(n int) int64 {
	if n < 2 {
		return int64(n)
	}
	return int64(n) * ceilLog2(n)
}

// iter is one streaming operator: next returns the next non-empty batch or
// nil at exhaustion; close terminates early and must propagate upstream.
// Batches are immutable once emitted — consumers copy, never mutate.
type iter interface {
	next() (*rel.Rel, error)
	close()
}

// stream is one pipeline edge: the iterator plus the schema bookkeeping the
// build phase threads exactly as the materializing executor's batch struct.
type stream struct {
	it     iter
	cols   []string
	sorted string
}

func (s stream) col(name string) (int, error) {
	for i, c := range s.cols {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("no column %q in %v", name, s.cols)
}

// streamer orchestrates one streaming execution. The counters are atomics
// because prefetch workers update them concurrently with the main pipeline;
// they fold into the Trace once the plan finishes.
type streamer struct {
	ex         *executor
	sops       StreamOps
	batch      int
	srcBatches atomic.Int64
	partScans  atomic.Int64
	unionParts atomic.Int64
	parallel   atomic.Bool
}

// runStream executes root through the streaming operator set. The result is
// the concatenation of the root iterator's batches — byte-identical to the
// materializing executor's output.
func (ex *executor) runStream(root Node, sops StreamOps) (*rel.Rel, []string, *Trace, error) {
	batch := ex.opt.BatchRows
	if batch <= 0 {
		batch = DefaultBatchRows
	}
	st := &streamer{ex: ex, sops: sops, batch: batch}
	s, err := st.build(root)
	if err != nil {
		return nil, nil, nil, err
	}
	out := rel.New(len(s.cols))
	for {
		b, err := s.it.next()
		if err != nil {
			s.it.close()
			return nil, nil, nil, err
		}
		if b == nil {
			break
		}
		out.Data = append(out.Data, b.Data...)
		// The accumulating result is live memory, as the root memo entry is
		// for the materializing executor.
		ex.mem.alloc(relBytes(b))
	}
	s.it.close()
	ex.tr.Streamed = true
	ex.tr.SourceBatches += int(st.srcBatches.Load())
	ex.tr.PartitionScans += int(st.partScans.Load())
	ex.tr.UnionParts += int(st.unionParts.Load())
	if st.parallel.Load() {
		ex.tr.Parallel = true
	}
	ex.tr.PeakBytes = ex.mem.peakBytes()
	return out, s.cols, ex.tr, nil
}

// build lowers one plan node to a streaming pipeline, mirroring eval's
// operator selection decision for decision.
func (st *streamer) build(n Node) (stream, error) {
	ex := st.ex
	if err := ex.ctx.Err(); err != nil {
		return stream{}, err
	}
	// A pull iterator has exactly one consumer, so a shared subexpression
	// (q6's reused access) is evaluated once through the memoizing
	// materializing path and re-chunked per consumer — shared nodes are
	// barriers in both executors.
	if ex.uses[n] > 1 {
		b, err := ex.eval(n)
		if err != nil {
			return stream{}, err
		}
		return stream{
			it:     &chunkIter{st: st, rel: b.rel, batch: st.batch},
			cols:   b.cols,
			sorted: b.sorted,
		}, nil
	}
	// Open the node's profile frame across the build phase (pipeline
	// breakers like the partitioned join's hash build charge here) and
	// wrap the finished edge so every next()/close() window accrues too.
	var prof *OpProfile
	var c0 charge
	var t0 time.Time
	if ex.prof != nil {
		prof = ex.prof.enter(n)
		c0 = ex.prof.charges()
		t0 = time.Now()
	}
	var s stream
	var err error
	switch x := n.(type) {
	case *Access:
		s, err = st.buildAccess(x)
	case *Join:
		s, err = st.buildJoin(x)
	case *LeftJoin:
		s, err = st.buildLeftJoin(x)
	case *FilterNe:
		s, err = st.buildFilter(x.In, func(in stream) (func([]uint64) bool, error) {
			c, err := in.col(x.Col)
			if err != nil {
				return nil, err
			}
			v := uint64(x.Value)
			return func(row []uint64) bool { return row[c] != v }, nil
		})
	case *FilterEqCols:
		s, err = st.buildFilter(x.In, func(in stream) (func([]uint64) bool, error) {
			a, err := in.col(x.A)
			if err != nil {
				return nil, err
			}
			b, err := in.col(x.B)
			if err != nil {
				return nil, err
			}
			return func(row []uint64) bool { return row[a] == row[b] }, nil
		})
	case *FilterRange:
		s, err = st.buildFilter(x.In, func(in stream) (func([]uint64) bool, error) {
			c, err := in.col(x.Col)
			if err != nil {
				return nil, err
			}
			pred := RangePred(x)
			return func(row []uint64) bool { return pred(row[c]) }, nil
		})
	case *Having:
		s, err = st.buildFilter(x.In, func(in stream) (func([]uint64) bool, error) {
			c, err := in.col(x.Col)
			if err != nil {
				return nil, err
			}
			return func(row []uint64) bool { return row[c] > x.Min }, nil
		})
	case *Distinct:
		s, err = st.buildDistinct(x)
	case *Union:
		s, err = st.buildUnion(x)
	case *Group:
		s, err = st.buildGroup(x)
	case *Project:
		s, err = st.buildProject(x)
	case *TopN:
		s, err = st.buildTopN(x)
	case *Limit:
		s, err = st.buildLimit(x)
	default:
		err = fmt.Errorf("unknown plan node %T", n)
	}
	if prof != nil {
		prof.add(ex.prof.charges().sub(c0), time.Since(t0))
		ex.prof.exit()
	}
	if err != nil {
		return stream{}, err
	}
	// Every edge's in-flight batch counts toward peak memory.
	s.it = &edge{mem: ex.mem, in: s.it}
	if prof != nil {
		s.it = &profIter{p: ex.prof, prof: prof, in: s.it}
	}
	return s, nil
}

// edge wraps an operator output: it tracks the in-flight batch as live
// memory and makes close idempotent, so operators may close their inputs
// defensively.
type edge struct {
	mem    *memTracker
	in     iter
	held   int64
	closed bool
}

func (e *edge) next() (*rel.Rel, error) {
	if e.closed {
		return nil, nil
	}
	b, err := e.in.next()
	e.mem.free(e.held)
	e.held = 0
	if b != nil {
		e.held = relBytes(b)
		e.mem.alloc(e.held)
	}
	return b, err
}

func (e *edge) close() {
	if e.closed {
		return
	}
	e.closed = true
	e.mem.free(e.held)
	e.held = 0
	e.in.close()
}

// chunkIter slices an already-materialized relation into batches. The views
// alias the backing array (which is already tracked), so no charges and no
// fresh allocation happen — exactly what memo reuse costs the materializing
// executor.
type chunkIter struct {
	st    *streamer
	rel   *rel.Rel
	batch int
	cur   int
	src   bool
}

func (c *chunkIter) next() (*rel.Rel, error) {
	if err := c.st.ex.ctx.Err(); err != nil {
		return nil, err
	}
	n := c.rel.Len()
	if c.cur >= n {
		return nil, nil
	}
	hi := c.cur + c.batch
	if hi > n {
		hi = n
	}
	out := &rel.Rel{W: c.rel.W, Data: c.rel.Data[c.cur*c.rel.W : hi*c.rel.W]}
	c.cur = hi
	if c.src {
		c.st.srcBatches.Add(1)
	}
	return out, nil
}

func (c *chunkIter) close() { c.cur = c.rel.Len() }

// srcIter adapts a physical RelIter: counts source batches and checks the
// request context at every batch boundary, so cancellation lands mid-scan.
type srcIter struct {
	st  *streamer
	src RelIter
}

func (s *srcIter) next() (*rel.Rel, error) {
	for {
		if err := s.st.ex.ctx.Err(); err != nil {
			return nil, err
		}
		b, err := s.src.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		if b.Len() == 0 {
			continue
		}
		s.st.srcBatches.Add(1)
		return b, nil
	}
}

func (s *srcIter) close() { s.src.Close() }

// mapIter applies a pure per-batch transform (assembly, tagging,
// projection), skipping batches the transform empties.
type mapIter struct {
	in iter
	f  func(*rel.Rel) *rel.Rel
}

func (m *mapIter) next() (*rel.Rel, error) {
	for {
		b, err := m.in.next()
		if b == nil || err != nil {
			return nil, err
		}
		out := m.f(b)
		if out.Len() > 0 {
			return out, nil
		}
	}
}

func (m *mapIter) close() { m.in.close() }

// emptyIter emits nothing.
type emptyIter struct{}

func (emptyIter) next() (*rel.Rel, error) { return nil, nil }
func (emptyIter) close()                  {}

// drainAll pulls an input to exhaustion into one relation and closes it —
// the pipeline breakers' buffering step.
func drainAll(it iter, w int) (*rel.Rel, error) {
	out := rel.New(w)
	for {
		b, err := it.next()
		if err != nil {
			it.close()
			return nil, err
		}
		if b == nil {
			break
		}
		out.Data = append(out.Data, b.Data...)
	}
	it.close()
	return out, nil
}

// propStream opens a streaming per-property scan, falling back to a chunked
// materializing scan on schemes without StreamSource.
func (st *streamer) propStream(p, s, o rdf.ID, need ScanCols) (iter, error) {
	if ss, ok := st.ex.src.(StreamSource); ok {
		ri, err := ss.StreamProp(p, s, o, need, st.batch)
		if err != nil {
			return nil, err
		}
		return &srcIter{st: st, src: ri}, nil
	}
	rows, err := st.ex.src.ScanProp(p, s, o, need)
	if err != nil {
		return nil, err
	}
	st.ex.mem.alloc(relBytes(rows))
	return &chunkIter{st: st, rel: rows, batch: st.batch, src: true}, nil
}

// triplesStream is propStream's unbound-property counterpart.
func (st *streamer) triplesStream(s, o rdf.ID, need ScanCols) iter {
	if ss, ok := st.ex.src.(StreamSource); ok {
		return &srcIter{st: st, src: ss.StreamTriples(s, o, need, st.batch)}
	}
	rows := st.ex.src.ScanTriples(s, o, need)
	st.ex.mem.alloc(relBytes(rows))
	return &chunkIter{st: st, rel: rows, batch: st.batch, src: true}
}

// assembleIter maps physical (s, p, o) batches to the pattern's variable
// columns — the per-batch form of evalAccess's assemble call (pure, no
// charges in either executor).
func assembleIter(in iter, slots []slot, vals func(row []uint64) [3]uint64) iter {
	return &mapIter{in: in, f: func(b *rel.Rel) *rel.Rel {
		out, _ := assemble(slots, b.Len(), func(i int) [3]uint64 { return vals(b.Row(i)) })
		return out
	}}
}

func (st *streamer) buildAccess(a *Access) (stream, error) {
	ex := st.ex
	tp := a.Pattern
	slots := ex.keptSlots(a)

	if tp.P.Bound() {
		it, err := st.propStream(tp.P.Const, tp.S.Const, tp.O.Const, needOf(slots))
		if err != nil {
			return stream{}, err
		}
		p := uint64(tp.P.Const)
		cols := slotCols(slots)
		out := assembleIter(it, slots, func(r []uint64) [3]uint64 {
			return [3]uint64{r[0], p, r[1]}
		})
		sorted := ""
		if ex.src.PropOrdered() {
			switch {
			case !tp.S.Bound() && tp.S.Var != "":
				sorted = tp.S.Var
			case !tp.O.Bound() && tp.O.Var != "":
				sorted = tp.O.Var
			}
		}
		return stream{it: out, cols: cols, sorted: sorted}, nil
	}

	if ex.src.Partitioned() {
		props := ex.src.Cat().AllProps
		if a.Restrict {
			props = ex.src.Cat().Interesting
		}
		cols := slotCols(slots)
		open := func(i int) (iter, error) {
			it, err := st.propStream(props[i], tp.S.Const, tp.O.Const, needOf(slots))
			if err != nil {
				return nil, err
			}
			pv := uint64(props[i])
			return assembleIter(it, slots, func(r []uint64) [3]uint64 {
				return [3]uint64{r[0], pv, r[1]}
			}), nil
		}
		return stream{it: st.fanout(open, len(props), len(cols)), cols: cols}, nil
	}

	// Unbound property on a triple-store: one streamed scan, with the
	// properties-table restriction applied per batch as a hash semijoin
	// (build the 28-property set once, probe every row).
	need := needOf(slots)
	if a.Restrict {
		need.P = true
	}
	it := st.triplesStream(tp.S.Const, tp.O.Const, need)
	if a.Restrict {
		// The restriction set comes from the catalog; the materializing
		// path's one-time set construction (a 28-row properties-table scan
		// or hash build) is a constant the streaming path does not re-charge.
		set := ex.src.Cat().interestingSet()
		st.sops.StreamNode()
		it = &filterIter{st: st, in: it, w: 3, restrict: true, pred: func(row []uint64) bool {
			return set[row[1]]
		}}
	}
	out := assembleIter(it, slots, func(r []uint64) [3]uint64 {
		return [3]uint64{r[0], r[1], r[2]}
	})
	return stream{it: out, cols: slotCols(slots)}, nil
}

// fanout streams the per-property parts of a partitioned access in property
// order — sequentially, or with a prefetching worker pool when the parallel
// mode is on. Union movement is charged as each batch passes downstream, and
// closing the fan-out early stops parts that were never reached (the
// streaming executor's saving on LIMIT plans; with workers the abandoned
// prefetch depth is scheduling-dependent, see ExecOptions.Workers).
// The w parameter is the width the union movement is charged at — the
// materializing fan-out unions before projecting, so it can exceed the
// emitted batch width (partitioned joins fuse the projection).
func (st *streamer) fanout(open func(i int) (iter, error), n, w int) iter {
	if st.ex.opt.Workers > 1 && n > 1 {
		return &parFanout{st: st, open: open, n: n, w: w}
	}
	return &seqFanout{st: st, open: open, n: n, w: w}
}

type seqFanout struct {
	st   *streamer
	open func(i int) (iter, error)
	n, w int
	cur  int
	it   iter
}

func (f *seqFanout) next() (*rel.Rel, error) {
	for {
		if f.it == nil {
			if f.cur >= f.n {
				return nil, nil
			}
			it, err := f.open(f.cur)
			if err != nil {
				return nil, err
			}
			// The union-all charges one operator dispatch per merged part.
			f.st.sops.StreamNode()
			f.st.partScans.Add(1)
			f.st.unionParts.Add(1)
			f.cur++
			f.it = it
		}
		b, err := f.it.next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			f.it.close()
			f.it = nil
			continue
		}
		f.st.sops.StreamUnionRows(b.Len(), f.w)
		return b, nil
	}
}

func (f *seqFanout) close() {
	if f.it != nil {
		f.it.close()
		f.it = nil
	}
	f.cur = f.n
}

// parFanout prefetches the per-property parts over the worker pool while the
// consumer drains them in property order, so output stays byte-identical to
// the sequential fan-out. Each part gets a small buffered channel; closing
// the fan-out sets the stop flag, drains every channel (unblocking workers
// mid-send), and waits for the pool — the deadlock-free shutdown protocol.
type fanMsg struct {
	b   *rel.Rel
	err error
}

type parFanout struct {
	st      *streamer
	open    func(i int) (iter, error)
	n, w    int
	chans   []chan fanMsg
	stop    atomic.Bool
	wg      sync.WaitGroup
	cur     int
	started bool
	closed  bool
}

func (f *parFanout) start() {
	f.started = true
	f.st.parallel.Store(true)
	f.chans = make([]chan fanMsg, f.n)
	for i := range f.chans {
		f.chans[i] = make(chan fanMsg, 2)
	}
	workers := f.st.ex.opt.Workers
	if workers > f.n {
		workers = f.n
	}
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			for i := range idx {
				f.runPart(i)
			}
		}()
	}
	go func() {
		for i := 0; i < f.n; i++ {
			idx <- i
		}
		close(idx)
	}()
}

func (f *parFanout) runPart(i int) {
	ch := f.chans[i]
	defer close(ch)
	if f.stop.Load() {
		return
	}
	it, err := f.open(i)
	if err != nil {
		ch <- fanMsg{err: err}
		return
	}
	defer it.close()
	// The union-all charges one operator dispatch per merged part.
	f.st.sops.StreamNode()
	f.st.partScans.Add(1)
	f.st.unionParts.Add(1)
	for {
		if f.stop.Load() {
			return
		}
		b, err := it.next()
		if err != nil {
			ch <- fanMsg{err: err}
			return
		}
		if b == nil {
			return
		}
		// Prefetched batches waiting in the channel are live memory.
		f.st.ex.mem.alloc(relBytes(b))
		ch <- fanMsg{b: b}
	}
}

func (f *parFanout) next() (*rel.Rel, error) {
	if !f.started {
		f.start()
	}
	for f.cur < f.n {
		msg, ok := <-f.chans[f.cur]
		if !ok {
			f.cur++
			continue
		}
		if msg.err != nil {
			return nil, msg.err
		}
		f.st.ex.mem.free(relBytes(msg.b))
		f.st.sops.StreamUnionRows(msg.b.Len(), f.w)
		return msg.b, nil
	}
	return nil, nil
}

func (f *parFanout) close() {
	if f.closed {
		return
	}
	f.closed = true
	if !f.started {
		return
	}
	f.stop.Store(true)
	for _, ch := range f.chans {
		for msg := range ch {
			f.st.ex.mem.free(relBytes(msg.b))
		}
	}
	f.wg.Wait()
}

// filterIter drops rows failing pred, charging per evaluated row (restrict
// selects the engine's interesting-properties restriction rate).
type filterIter struct {
	st       *streamer
	in       iter
	w        int
	pred     func([]uint64) bool
	restrict bool
}

func (f *filterIter) next() (*rel.Rel, error) {
	for {
		b, err := f.in.next()
		if b == nil || err != nil {
			return nil, err
		}
		n := b.Len()
		if f.restrict {
			f.st.sops.StreamRestrictRows(n, f.w)
		} else {
			f.st.sops.StreamFilterRows(n, f.w)
		}
		out := rel.New(b.W)
		for i := 0; i < n; i++ {
			row := b.Row(i)
			if f.pred(row) {
				out.Data = append(out.Data, row...)
			}
		}
		if out.Len() > 0 {
			return out, nil
		}
	}
}

func (f *filterIter) close() { f.in.close() }

func (st *streamer) buildFilter(in Node, mk func(stream) (func([]uint64) bool, error)) (stream, error) {
	s, err := st.build(in)
	if err != nil {
		return stream{}, err
	}
	pred, err := mk(s)
	if err != nil {
		s.it.close()
		return stream{}, err
	}
	st.sops.StreamNode()
	return stream{
		it:     &filterIter{st: st, in: s.it, w: len(s.cols), pred: pred},
		cols:   s.cols,
		sorted: s.sorted,
	}, nil
}

// sharedVar finds the single join variable of two schemas, as the
// materializing join lowering does.
func sharedVar(lcols, rcols []string) (string, error) {
	rSet := map[string]bool{}
	for _, c := range rcols {
		rSet[c] = true
	}
	var shared []string
	for _, c := range lcols {
		if rSet[c] {
			shared = append(shared, c)
		}
	}
	if len(shared) != 1 {
		return "", fmt.Errorf("join of %v and %v shares %d variables, want 1", lcols, rcols, len(shared))
	}
	return shared[0], nil
}

// joinOutCols is the executor's join output schema: left columns, then the
// right's minus its copy of the join column.
func joinOutCols(lcols, rcols []string, rc int) []string {
	cols := make([]string, 0, len(lcols)+len(rcols)-1)
	cols = append(cols, lcols...)
	for i, c := range rcols {
		if i != rc {
			cols = append(cols, c)
		}
	}
	return cols
}

func (st *streamer) buildJoin(j *Join) (stream, error) {
	ex := st.ex
	if a, f := ex.partitionedJoinSide(j.R); a != nil {
		other, err := st.build(j.L)
		if err != nil {
			return stream{}, err
		}
		if ex.prof != nil {
			ex.prof.note(j, "partitioned hash")
		}
		return st.buildPartitionedJoin(other, a, f)
	}
	if a, f := ex.partitionedJoinSide(j.L); a != nil {
		other, err := st.build(j.R)
		if err != nil {
			return stream{}, err
		}
		if ex.prof != nil {
			ex.prof.note(j, "partitioned hash")
		}
		return st.buildPartitionedJoin(other, a, f)
	}
	l, err := st.build(j.L)
	if err != nil {
		return stream{}, err
	}
	r, err := st.build(j.R)
	if err != nil {
		l.it.close()
		return stream{}, err
	}
	v, err := sharedVar(l.cols, r.cols)
	if err != nil {
		l.it.close()
		r.it.close()
		return stream{}, err
	}
	lc, _ := l.col(v)
	rc, _ := r.col(v)
	merge := l.sorted == v && r.sorted == v
	ex.tr.Joins = append(ex.tr.Joins, JoinChoice{Var: v, Merge: merge})
	if ex.prof != nil {
		if merge {
			ex.prof.note(j, "merge")
		} else {
			ex.prof.note(j, "hash")
		}
	}
	cols := joinOutCols(l.cols, r.cols, rc)
	st.sops.StreamNode()
	var it iter
	if merge {
		it = &mergeJoinIter{st: st, l: l.it, r: r.it, lc: lc, rc: rc, lw: len(l.cols), rw: len(r.cols)}
	} else {
		it = &hashJoinIter{st: st, l: l.it, r: r.it, lc: lc, rc: rc, lw: len(l.cols), rw: len(r.cols)}
	}
	sorted := ""
	if merge {
		sorted = v
	}
	return stream{it: it, cols: cols, sorted: sorted}, nil
}

// hashJoinIter replicates the materializing hash join's build-side choice
// and output order without knowing |R| in advance: it drains L (the build
// side's size is always known to an optimizer), then buffers R only until R
// proves at least as large as L — from then on R streams straight through
// the probe. When R exhausts smaller, the buffered R builds and the drained
// L probes in order. Either way the emitted order is probe-major with
// matches in build-insertion order: exactly the materializing operator's.
type hashJoinIter struct {
	st      *streamer
	l, r    iter
	lc, rc  int
	lw, rw  int
	started bool
	done    bool

	ht       map[uint64][]int
	build    *rel.Rel // build side rows in insertion order
	buildIsL bool
	probeRel *rel.Rel   // drained probe side (build-R case)
	probeCur int        // chunk cursor into probeRel
	replay   []*rel.Rel // buffered probe batches to re-emit (build-L case)
	bufBytes int64
}

func (h *hashJoinIter) start() error {
	h.started = true
	lrel, err := drainAll(h.l, h.lw)
	if err != nil {
		return err
	}
	h.hold(relBytes(lrel))
	nl := lrel.Len()
	if nl == 0 {
		// No row can join; the streaming executor closes R unread (the
		// materializing one still scans it — an allowed charge divergence).
		h.r.close()
		h.done = true
		h.release()
		return nil
	}
	var rbufs []*rel.Rel
	rRows := 0
	for rRows < nl {
		b, err := h.r.next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		h.hold(relBytes(b))
		rbufs = append(rbufs, b)
		rRows += b.Len()
	}
	if rRows < nl {
		// R is strictly smaller: build R (insertion order = R order), probe
		// the drained L in its order.
		h.buildIsL = false
		bld := rel.New(h.rw)
		for _, b := range rbufs {
			bld.Data = append(bld.Data, b.Data...)
		}
		h.build = bld
		h.buildTable(bld, h.rc)
		h.probeRel = lrel
	} else {
		// L is no larger: build L, probe the buffered R batches then the
		// live tail.
		h.buildIsL = true
		h.build = lrel
		h.buildTable(lrel, h.lc)
		h.replay = rbufs
	}
	return nil
}

func (h *hashJoinIter) buildTable(b *rel.Rel, c int) {
	n := b.Len()
	h.ht = make(map[uint64][]int, n)
	for i := 0; i < n; i++ {
		k := b.Row(i)[c]
		h.ht[k] = append(h.ht[k], i)
	}
	// The table's buckets are live alongside the buffered rows.
	h.hold(int64(n) * 16)
	if h.buildIsL {
		h.st.sops.StreamHashBuildRows(n, h.lw)
	} else {
		h.st.sops.StreamHashBuildRows(n, h.rw)
	}
}

func (h *hashJoinIter) hold(n int64) {
	h.st.ex.mem.alloc(n)
	h.bufBytes += n
}

func (h *hashJoinIter) release() {
	h.st.ex.mem.free(h.bufBytes)
	h.bufBytes = 0
	h.ht = nil
	h.build = nil
	h.probeRel = nil
	h.replay = nil
}

// nextProbe returns the next probe-side batch, or nil at exhaustion.
func (h *hashJoinIter) nextProbe() (*rel.Rel, error) {
	if h.probeRel != nil {
		n := h.probeRel.Len()
		if h.probeCur >= n {
			return nil, nil
		}
		hi := h.probeCur + h.st.batch
		if hi > n {
			hi = n
		}
		b := &rel.Rel{W: h.probeRel.W, Data: h.probeRel.Data[h.probeCur*h.probeRel.W : hi*h.probeRel.W]}
		h.probeCur = hi
		return b, nil
	}
	if len(h.replay) > 0 {
		b := h.replay[0]
		h.replay = h.replay[1:]
		return b, nil
	}
	return h.r.next()
}

func (h *hashJoinIter) next() (*rel.Rel, error) {
	if !h.started {
		if err := h.start(); err != nil {
			return nil, err
		}
	}
	if h.done {
		return nil, nil
	}
	outW := h.lw + h.rw - 1
	probeW := h.rw
	if !h.buildIsL {
		probeW = h.lw
	}
	for {
		pb, err := h.nextProbe()
		if err != nil {
			return nil, err
		}
		if pb == nil {
			h.done = true
			h.release()
			return nil, nil
		}
		n := pb.Len()
		h.st.sops.StreamHashProbeRows(n, probeW)
		out := rel.New(outW)
		pc := h.rc
		if !h.buildIsL {
			pc = h.lc
		}
		for i := 0; i < n; i++ {
			prow := pb.Row(i)
			for _, bi := range h.ht[prow[pc]] {
				brow := h.build.Row(bi)
				if h.buildIsL {
					appendJoinRow(out, brow, prow, h.rc)
				} else {
					appendJoinRow(out, prow, brow, h.rc)
				}
			}
		}
		if out.Len() > 0 {
			// Charged at the materializing join's pre-projection width; the
			// streaming operator fuses the free projection.
			h.st.sops.StreamJoinEmitRows(out.Len(), h.lw+h.rw)
			return out, nil
		}
	}
}

// appendJoinRow emits one joined row: the left row, then the right row minus
// its copy of the join column — the executor's post-join projection, fused.
func appendJoinRow(out *rel.Rel, lrow, rrow []uint64, rc int) {
	out.Data = append(out.Data, lrow...)
	for i, v := range rrow {
		if i != rc {
			out.Data = append(out.Data, v)
		}
	}
}

func (h *hashJoinIter) close() {
	h.done = true
	h.release()
	h.l.close()
	h.r.close()
}

// buildLeftJoin streams SPARQL's OPTIONAL: the optional (right) side builds
// — it must be complete before any left row can be declared unmatched — and
// the required (left) side streams through the probe in order, so left
// ordering survives, as in the materializing operator.
func (st *streamer) buildLeftJoin(j *LeftJoin) (stream, error) {
	l, err := st.build(j.L)
	if err != nil {
		return stream{}, err
	}
	r, err := st.build(j.R)
	if err != nil {
		l.it.close()
		return stream{}, err
	}
	v, err := sharedVar(l.cols, r.cols)
	if err != nil {
		l.it.close()
		r.it.close()
		return stream{}, err
	}
	lc, _ := l.col(v)
	rc, _ := r.col(v)
	st.ex.tr.Joins = append(st.ex.tr.Joins, JoinChoice{Var: v, Merge: false})
	if st.ex.prof != nil {
		st.ex.prof.note(j, "hash")
	}
	cols := joinOutCols(l.cols, r.cols, rc)
	st.sops.StreamNode()
	it := &leftJoinIter{st: st, l: l.it, r: r.it, lc: lc, rc: rc, lw: len(l.cols), rw: len(r.cols)}
	return stream{it: it, cols: cols, sorted: l.sorted}, nil
}

type leftJoinIter struct {
	st       *streamer
	l, r     iter
	lc, rc   int
	lw, rw   int
	started  bool
	ht       map[uint64][]int
	build    *rel.Rel
	bufBytes int64
}

func (j *leftJoinIter) start() error {
	j.started = true
	rrel, err := drainAll(j.r, j.rw)
	if err != nil {
		return err
	}
	j.build = rrel
	j.bufBytes = relBytes(rrel) + int64(rrel.Len())*16
	j.st.ex.mem.alloc(j.bufBytes)
	n := rrel.Len()
	j.ht = make(map[uint64][]int, n)
	for i := 0; i < n; i++ {
		k := rrel.Row(i)[j.rc]
		j.ht[k] = append(j.ht[k], i)
	}
	j.st.sops.StreamHashBuildRows(n, j.rw)
	return nil
}

func (j *leftJoinIter) next() (*rel.Rel, error) {
	if !j.started {
		if err := j.start(); err != nil {
			return nil, err
		}
	}
	outW := j.lw + j.rw - 1
	nulls := make([]uint64, j.rw)
	for i := range nulls {
		nulls[i] = uint64(rdf.NoID)
	}
	b, err := j.l.next()
	if b == nil || err != nil {
		return nil, err
	}
	n := b.Len()
	j.st.sops.StreamHashProbeRows(n, j.lw)
	out := rel.New(outW)
	for i := 0; i < n; i++ {
		lrow := b.Row(i)
		matches := j.ht[lrow[j.lc]]
		if len(matches) == 0 {
			appendJoinRow(out, lrow, nulls, j.rc)
			continue
		}
		for _, bi := range matches {
			appendJoinRow(out, lrow, j.build.Row(bi), j.rc)
		}
	}
	// Every left row emits at least once, so the batch is never empty.
	// Charged at the materializing join's pre-projection width.
	j.st.sops.StreamJoinEmitRows(out.Len(), j.lw+j.rw)
	return out, nil
}

func (j *leftJoinIter) close() {
	j.st.ex.mem.free(j.bufBytes)
	j.bufBytes = 0
	j.ht = nil
	j.build = nil
	j.l.close()
	j.r.close()
}

// rowCur steps row-at-a-time over a batch iterator — the merge join's input
// abstraction. Advancement charges accrue per pulled batch.
type rowCur struct {
	st   *streamer
	in   iter
	w    int
	b    *rel.Rel
	i    int
	done bool
}

// cur returns the current row, pulling the next batch as needed; nil at
// exhaustion.
func (c *rowCur) cur() ([]uint64, error) {
	for {
		if c.done {
			return nil, nil
		}
		if c.b != nil && c.i < c.b.Len() {
			return c.b.Row(c.i), nil
		}
		b, err := c.in.next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			c.done = true
			return nil, nil
		}
		c.st.sops.StreamMergeRows(b.Len(), c.w)
		c.b, c.i = b, 0
	}
}

func (c *rowCur) advance() { c.i++ }

// mergeJoinIter is the streaming linear merge join over two inputs sorted on
// their join columns. Equal runs cross-product left-outer, matching the
// materializing operator's emission order; only the current right-side run
// is buffered, so memory stays bounded by the largest run.
type mergeJoinIter struct {
	st     *streamer
	l, r   iter
	lc, rc int
	lw, rw int
	lcur   *rowCur
	rcur   *rowCur
	// run is the buffered right-side equal run being crossed with the
	// current left rows; runLeft is the pending left row mid-run.
	run      [][]uint64
	runVal   uint64
	inRun    bool
	runBytes int64
	done     bool
}

func (m *mergeJoinIter) init() {
	if m.lcur == nil {
		m.lcur = &rowCur{st: m.st, in: m.l, w: m.lw}
		m.rcur = &rowCur{st: m.st, in: m.r, w: m.rw}
	}
}

func (m *mergeJoinIter) next() (*rel.Rel, error) {
	if m.done {
		return nil, nil
	}
	m.init()
	outW := m.lw + m.rw - 1
	out := rel.New(outW)
	for out.Len() < m.st.batch {
		if m.inRun {
			// Cross the current left row with the buffered right run, then
			// step to the next left row of the run.
			lrow, err := m.lcur.cur()
			if err != nil {
				return nil, err
			}
			if lrow == nil || lrow[m.lc] != m.runVal {
				m.endRun()
				continue
			}
			for _, rrow := range m.run {
				appendJoinRow(out, lrow, rrow, m.rc)
			}
			m.lcur.advance()
			continue
		}
		lrow, err := m.lcur.cur()
		if err != nil {
			return nil, err
		}
		rrow, err := m.rcur.cur()
		if err != nil {
			return nil, err
		}
		if lrow == nil || rrow == nil {
			m.done = true
			break
		}
		lv, rv := lrow[m.lc], rrow[m.rc]
		switch {
		case lv < rv:
			m.lcur.advance()
		case lv > rv:
			m.rcur.advance()
		default:
			// Buffer the full right-side equal run (it may span batches).
			m.runVal = lv
			m.inRun = true
			for {
				m.run = append(m.run, append([]uint64(nil), rrow...))
				m.runBytes += int64(m.rw) * 8
				m.rcur.advance()
				rrow, err = m.rcur.cur()
				if err != nil {
					return nil, err
				}
				if rrow == nil || rrow[m.rc] != m.runVal {
					break
				}
			}
			m.st.ex.mem.alloc(m.runBytes)
		}
	}
	if out.Len() == 0 {
		return nil, nil
	}
	// Charged at the materializing join's pre-projection width.
	m.st.sops.StreamJoinEmitRows(out.Len(), m.lw+m.rw)
	return out, nil
}

func (m *mergeJoinIter) endRun() {
	m.inRun = false
	m.run = m.run[:0]
	m.st.ex.mem.free(m.runBytes)
	m.runBytes = 0
}

func (m *mergeJoinIter) close() {
	m.done = true
	if m.runBytes > 0 {
		m.st.ex.mem.free(m.runBytes)
		m.runBytes = 0
	}
	m.l.close()
	m.r.close()
}

// buildPartitionedJoin streams the join pushdown into a partitioned fan-out:
// the non-access side drains once into a hash build (as PrepareHashJoin
// does), and every per-property scan streams through tag → filter → probe in
// property order, so the union of the per-table joins is emitted without
// ever materializing it.
func (st *streamer) buildPartitionedJoin(other stream, a *Access, f *FilterNe) (stream, error) {
	ex := st.ex
	tp := a.Pattern
	slots := ex.keptSlots(a)
	accCols := slotCols(slots)
	closeOther := func() { other.it.close() }
	v, err := sharedVar(other.cols, accCols)
	if err != nil {
		closeOther()
		return stream{}, err
	}
	oc, _ := other.col(v)
	ac := 0
	for i, c := range accCols {
		if c == v {
			ac = i
		}
	}
	fc := -1
	if f != nil {
		for i, c := range accCols {
			if c == f.Col {
				fc = i
			}
		}
		if fc < 0 {
			closeOther()
			return stream{}, fmt.Errorf("filter column %q not in %v", f.Col, accCols)
		}
	}
	props := ex.src.Cat().AllProps
	if a.Restrict {
		props = ex.src.Cat().Interesting
	}
	// Build once over the drained non-access side, as PrepareHashJoin does.
	orel, err := drainAll(other.it, len(other.cols))
	if err != nil {
		return stream{}, err
	}
	bufBytes := relBytes(orel) + int64(orel.Len())*16
	ex.mem.alloc(bufBytes)
	st.sops.StreamNode()
	st.sops.StreamHashBuildRows(orel.Len(), len(other.cols))
	ex.tr.Joins = append(ex.tr.Joins, JoinChoice{Var: v, Merge: false})
	cols := make([]string, 0, len(other.cols)+len(accCols)-1)
	cols = append(cols, other.cols...)
	for i, c := range accCols {
		if i != ac {
			cols = append(cols, c)
		}
	}
	if orel.Len() == 0 {
		// Nothing can join; skip the fan-out entirely (the materializing
		// executor still scans every table — an allowed charge divergence).
		ex.mem.free(bufBytes)
		return stream{it: emptyIter{}, cols: cols}, nil
	}
	ht := make(map[uint64][]int, orel.Len())
	for i := 0; i < orel.Len(); i++ {
		k := orel.Row(i)[oc]
		ht[k] = append(ht[k], i)
	}
	// Fused-step profiles: the access (and filter) never stream standalone,
	// so count their per-part rows through atomics (prefetch workers pull
	// the arms concurrently) and fold the totals in at finish().
	var accRows, accBatches, filtRows, filtBatches atomic.Int64
	if ex.prof != nil {
		ex.profileFusedStream(a, f, &accRows, &accBatches, &filtRows, &filtBatches)
	}
	open := func(i int) (iter, error) {
		it, err := st.propStream(props[i], tp.S.Const, tp.O.Const, needOf(slots))
		if err != nil {
			return nil, err
		}
		pv := uint64(props[i])
		tagged := assembleIter(it, slots, func(r []uint64) [3]uint64 {
			return [3]uint64{r[0], pv, r[1]}
		})
		if ex.prof != nil {
			tagged = &countIter{in: tagged, rows: &accRows, batches: &accBatches}
		}
		if fc >= 0 {
			st.sops.StreamNode()
			val := uint64(f.Value)
			tagged = &filterIter{st: st, in: tagged, w: len(accCols), pred: func(row []uint64) bool {
				return row[fc] != val
			}}
			if ex.prof != nil {
				tagged = &countIter{in: tagged, rows: &filtRows, batches: &filtBatches}
			}
		}
		st.sops.StreamNode() // the per-table probe dispatch
		return &partProbeIter{st: st, in: tagged, orel: orel, ht: ht, ac: ac, aw: len(accCols)}, nil
	}
	// Union movement is charged at the materializing fan-out's
	// pre-projection width (the probe outputs before dropping the join col).
	fo := st.fanout(open, len(props), len(other.cols)+len(accCols))
	return stream{it: &releaseIter{in: fo, free: func() {
		ex.mem.free(bufBytes)
	}}, cols: cols}, nil
}

// partProbeIter probes tagged per-property batches against the shared build
// side, emitting build-row ++ probe-row (minus the access's join column) in
// probe-major order — Probe's order, with the executor's projection fused.
type partProbeIter struct {
	st   *streamer
	in   iter
	orel *rel.Rel
	ht   map[uint64][]int
	ac   int
	aw   int
}

func (p *partProbeIter) next() (*rel.Rel, error) {
	outW := p.orel.W + p.aw - 1
	for {
		b, err := p.in.next()
		if b == nil || err != nil {
			return nil, err
		}
		n := b.Len()
		p.st.sops.StreamHashProbeRows(n, p.aw)
		out := rel.New(outW)
		for i := 0; i < n; i++ {
			arow := b.Row(i)
			for _, oi := range p.ht[arow[p.ac]] {
				appendJoinRow(out, p.orel.Row(oi), arow, p.ac)
			}
		}
		if out.Len() > 0 {
			// Charged at the materializing probe's pre-projection width.
			p.st.sops.StreamJoinEmitRows(out.Len(), p.orel.W+p.aw)
			return out, nil
		}
	}
}

func (p *partProbeIter) close() { p.in.close() }

// releaseIter frees buffered operator state exactly once, at close or
// exhaustion, whichever comes first.
type releaseIter struct {
	in    iter
	free  func()
	freed bool
}

func (r *releaseIter) next() (*rel.Rel, error) {
	b, err := r.in.next()
	if b == nil && r.free != nil && !r.freed {
		r.freed = true
		r.free()
	}
	return b, err
}

func (r *releaseIter) close() {
	if !r.freed {
		r.freed = true
		if r.free != nil {
			r.free()
		}
	}
	r.in.close()
}

func (st *streamer) buildDistinct(d *Distinct) (stream, error) {
	s, err := st.build(d.In)
	if err != nil {
		return stream{}, err
	}
	st.sops.StreamNode()
	it := &distinctIter{st: st, in: s.it, w: len(s.cols), seen: map[string]bool{}}
	return stream{it: it, cols: s.cols, sorted: s.sorted}, nil
}

// distinctIter keeps first occurrences in input order — both engines'
// Distinct semantics — with the seen-set carried across batches.
type distinctIter struct {
	st       *streamer
	in       iter
	w        int
	seen     map[string]bool
	keyBytes int64
}

func (d *distinctIter) next() (*rel.Rel, error) {
	buf := make([]byte, 0, d.w*8)
	for {
		b, err := d.in.next()
		if b == nil || err != nil {
			return nil, err
		}
		n := b.Len()
		d.st.sops.StreamDistinctRows(n, d.w)
		out := rel.New(b.W)
		for i := 0; i < n; i++ {
			row := b.Row(i)
			buf = buf[:0]
			for _, v := range row {
				buf = append(buf,
					byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
					byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
			}
			if k := string(buf); !d.seen[k] {
				d.seen[k] = true
				kb := int64(len(k)) + 16
				d.st.ex.mem.alloc(kb)
				d.keyBytes += kb
				out.Data = append(out.Data, row...)
			}
		}
		if out.Len() > 0 {
			return out, nil
		}
	}
}

func (d *distinctIter) close() {
	d.st.ex.mem.free(d.keyBytes)
	d.keyBytes = 0
	d.seen = nil
	d.in.close()
}

func (st *streamer) buildUnion(u *Union) (stream, error) {
	l, err := st.build(u.L)
	if err != nil {
		return stream{}, err
	}
	r, err := st.build(u.R)
	if err != nil {
		l.it.close()
		return stream{}, err
	}
	if len(l.cols) != len(r.cols) {
		l.it.close()
		r.it.close()
		return stream{}, fmt.Errorf("union of %v and %v", l.cols, r.cols)
	}
	perm := make([]int, len(l.cols))
	identity := true
	for i, c := range l.cols {
		j, err := r.col(c)
		if err != nil {
			l.it.close()
			r.it.close()
			return stream{}, fmt.Errorf("union of %v and %v", l.cols, r.cols)
		}
		perm[i] = j
		if i != j {
			identity = false
		}
	}
	if identity {
		perm = nil
	}
	st.sops.StreamNode()
	it := &unionIter{st: st, l: l.it, r: r.it, w: len(l.cols), perm: perm}
	return stream{it: it, cols: l.cols}, nil
}

// unionIter concatenates two inputs (left fully, then right), aligning the
// right side's column order per batch when it differs.
type unionIter struct {
	st      *streamer
	l, r    iter
	w       int
	perm    []int
	onRight bool
}

func (u *unionIter) next() (*rel.Rel, error) {
	for {
		var b *rel.Rel
		var err error
		if !u.onRight {
			b, err = u.l.next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				u.onRight = true
				continue
			}
		} else {
			b, err = u.r.next()
			if b == nil || err != nil {
				return nil, err
			}
			if u.perm != nil {
				b = b.Project(u.perm...)
			}
		}
		u.st.sops.StreamUnionRows(b.Len(), u.w)
		return b, nil
	}
}

func (u *unionIter) close() {
	u.l.close()
	u.r.close()
}

func (st *streamer) buildGroup(g *Group) (stream, error) {
	s, err := st.build(g.In)
	if err != nil {
		return stream{}, err
	}
	if len(g.Keys) == 0 || len(g.Keys) > 2 {
		s.it.close()
		return stream{}, fmt.Errorf("group on %d keys", len(g.Keys))
	}
	keys := make([]int, len(g.Keys))
	for i, k := range g.Keys {
		if keys[i], err = s.col(k); err != nil {
			s.it.close()
			return stream{}, err
		}
	}
	st.sops.StreamNode()
	cols := append(append([]string(nil), g.Keys...), CountCol)
	it := &groupIter{st: st, in: s.it, keys: keys, w: len(s.cols)}
	return stream{it: it, cols: cols, sorted: g.Keys[0]}, nil
}

// groupIter is a pipeline breaker, but a compact one: it counts group sizes
// incrementally per batch — only the group table is buffered, never the
// input — then emits the sorted (keys..., count) rows both engines'
// GroupCount produce.
type groupIter struct {
	st       *streamer
	in       iter
	keys     []int
	w        int
	out      *chunkIter
	tabBytes int64
}

func (g *groupIter) start() error {
	counts := make(map[[2]uint64]uint64, 64)
	for {
		b, err := g.in.next()
		if err != nil {
			g.in.close()
			return err
		}
		if b == nil {
			break
		}
		n := b.Len()
		g.st.sops.StreamGroupRows(n, len(g.keys))
		for i := 0; i < n; i++ {
			row := b.Row(i)
			var k [2]uint64
			for j, c := range g.keys {
				k[j] = row[c]
			}
			if _, ok := counts[k]; !ok {
				g.st.ex.mem.alloc(40)
				g.tabBytes += 40
			}
			counts[k]++
		}
	}
	g.in.close()
	out := rel.New(len(g.keys) + 1)
	for k, cnt := range counts {
		vals := make([]uint64, 0, 3)
		vals = append(vals, k[:len(g.keys)]...)
		vals = append(vals, cnt)
		out.Append(vals...)
	}
	out.Sort()
	g.st.ex.mem.alloc(relBytes(out))
	g.tabBytes += relBytes(out)
	g.out = &chunkIter{st: g.st, rel: out, batch: g.st.batch}
	return nil
}

func (g *groupIter) next() (*rel.Rel, error) {
	if g.out == nil {
		if err := g.start(); err != nil {
			return nil, err
		}
	}
	return g.out.next()
}

func (g *groupIter) close() {
	g.st.ex.mem.free(g.tabBytes)
	g.tabBytes = 0
	g.out = nil
	g.in.close()
}

func (st *streamer) buildProject(p *Project) (stream, error) {
	s, err := st.build(p.In)
	if err != nil {
		return stream{}, err
	}
	idx := make([]int, len(p.Cols))
	for i, c := range p.Cols {
		if idx[i], err = s.col(c); err != nil {
			s.it.close()
			return stream{}, err
		}
	}
	names := p.Cols
	if p.As != nil {
		if len(p.As) != len(p.Cols) {
			s.it.close()
			return stream{}, fmt.Errorf("project renames %d of %d columns", len(p.As), len(p.Cols))
		}
		names = p.As
	}
	sorted := ""
	for i, c := range p.Cols {
		if c == s.sorted {
			sorted = names[i]
		}
	}
	it := &mapIter{in: s.it, f: func(b *rel.Rel) *rel.Rel { return b.Project(idx...) }}
	return stream{it: it, cols: append([]string(nil), names...), sorted: sorted}, nil
}

func (st *streamer) buildTopN(t *TopN) (stream, error) {
	s, err := st.build(t.In)
	if err != nil {
		return stream{}, err
	}
	less, err := SortLess(t.Keys, s.cols, t.Ord)
	if err != nil {
		s.it.close()
		return stream{}, err
	}
	st.sops.StreamNode()
	if st.ex.prof != nil {
		if t.Limit >= 0 {
			st.ex.prof.note(t, "heap")
		} else {
			st.ex.prof.note(t, "sort")
		}
	}
	it := &topNIter{st: st, in: s.it, less: less, limit: t.Limit, w: len(s.cols)}
	return stream{it: it, cols: s.cols, sorted: ""}, nil
}

// topNIter is ORDER BY / LIMIT as a bounded heap: for limit k ≥ 0 it keeps
// the k least rows under less in a max-heap (worst at the root), charging
// exactly ceil(log2 k) comparisons per input row; the survivors sort at the
// end, which under the plan layer's total order reproduces the materializing
// full sort's first k rows byte for byte. A negative limit is plain ORDER BY
// — a full-sort breaker delegated to the engine's materializing TopN.
type topNIter struct {
	st      *streamer
	in      iter
	less    func(a, b []uint64) bool
	limit   int
	w       int
	started bool
	out     *chunkIter
	bufRel  *rel.Rel
	heap    [][]uint64
	bytes   int64
}

func (t *topNIter) start() error {
	t.started = true
	if t.limit < 0 {
		// Plain ORDER BY: nothing to terminate early, so drain and run the
		// engine's own sort (identical charges to the materializing path).
		in, err := drainAll(t.in, t.w)
		if err != nil {
			return err
		}
		t.bytes = relBytes(in)
		t.st.ex.mem.alloc(t.bytes)
		n := in.Len()
		t.st.ex.tr.TopNs = append(t.st.ex.tr.TopNs, TopNStat{
			Input: n, Limit: t.limit, Compares: sortCompares(n),
		})
		out := t.st.ex.ops.TopN(in, t.limit, t.less)
		t.bufRel = out
		t.st.ex.mem.alloc(relBytes(out))
		t.bytes += relBytes(out)
		t.out = &chunkIter{st: t.st, rel: out, batch: t.st.batch}
		return nil
	}
	if t.limit == 0 {
		// LIMIT 0 pulls nothing: close the input before it does any work.
		t.in.close()
		t.st.ex.tr.TopNs = append(t.st.ex.tr.TopNs, TopNStat{Limit: 0, Heap: true})
		t.out = &chunkIter{st: t.st, rel: rel.New(t.w), batch: t.st.batch}
		return nil
	}
	k := t.limit
	perRow := ceilLog2(k)
	input := 0
	for {
		b, err := t.in.next()
		if err != nil {
			t.in.close()
			return err
		}
		if b == nil {
			break
		}
		n := b.Len()
		input += n
		t.st.sops.StreamSortCompares(int64(n) * perRow)
		for i := 0; i < n; i++ {
			t.push(b.Row(i), k)
		}
	}
	t.in.close()
	rows := t.heap
	sort.Slice(rows, func(i, j int) bool { return t.less(rows[i], rows[j]) })
	out := rel.NewCap(t.w, len(rows))
	for _, row := range rows {
		out.Data = append(out.Data, row...)
	}
	t.st.sops.StreamEmitRows(out.Len(), t.w)
	t.st.ex.tr.TopNs = append(t.st.ex.tr.TopNs, TopNStat{
		Input: input, Limit: k, Compares: int64(input) * perRow, Heap: true,
	})
	t.bufRel = out
	t.st.ex.mem.alloc(relBytes(out))
	t.bytes += relBytes(out)
	t.out = &chunkIter{st: t.st, rel: out, batch: t.st.batch}
	t.heap = nil
	return nil
}

// push offers one row to the bounded max-heap of the k least rows.
func (t *topNIter) push(row []uint64, k int) {
	h := t.heap
	if len(h) < k {
		cp := append([]uint64(nil), row...)
		h = append(h, cp)
		t.st.ex.mem.alloc(int64(t.w) * 8)
		t.bytes += int64(t.w) * 8
		// Sift up: parents hold the greater row.
		i := len(h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !t.less(h[p], h[i]) {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
		t.heap = h
		return
	}
	if !t.less(row, h[0]) {
		return
	}
	copy(h[0], row)
	// Sift down.
	i := 0
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && t.less(h[big], h[l]) {
			big = l
		}
		if r < n && t.less(h[big], h[r]) {
			big = r
		}
		if big == i {
			break
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

func (t *topNIter) next() (*rel.Rel, error) {
	if !t.started {
		if err := t.start(); err != nil {
			return nil, err
		}
	}
	if t.out == nil {
		return nil, nil
	}
	return t.out.next()
}

func (t *topNIter) close() {
	t.st.ex.mem.free(t.bytes)
	t.bytes = 0
	t.heap = nil
	t.bufRel = nil
	t.out = nil
	t.in.close()
}

func (st *streamer) buildLimit(l *Limit) (stream, error) {
	s, err := st.build(l.In)
	if err != nil {
		return stream{}, err
	}
	n := l.N
	if n < 0 {
		n = 0
	}
	it := &limitIter{in: s.it, remaining: n}
	return stream{it: it, cols: s.cols, sorted: s.sorted}, nil
}

// limitIter passes its input's first N rows through and then closes the
// input — the early-termination signal that propagates all the way into the
// physical scans. Truncation itself is free, exactly as in the materializing
// evalLimit.
type limitIter struct {
	in        iter
	remaining int
	done      bool
}

func (l *limitIter) next() (*rel.Rel, error) {
	if l.done {
		return nil, nil
	}
	if l.remaining <= 0 {
		l.done = true
		l.in.close()
		return nil, nil
	}
	b, err := l.in.next()
	if err != nil {
		return nil, err
	}
	if b == nil {
		l.done = true
		return nil, nil
	}
	if b.Len() > l.remaining {
		b = &rel.Rel{W: b.W, Data: b.Data[:l.remaining*b.W]}
	}
	l.remaining -= b.Len()
	if l.remaining == 0 {
		l.done = true
		l.in.close()
	}
	return b, nil
}

func (l *limitIter) close() {
	l.done = true
	l.in.close()
}
