// Package core implements the study itself: the two RDF storage schemes
// (triple-store with a chosen clustering, and the vertically-partitioned
// scheme) instantiated over both the row-store and the column-store engine,
// the twelve benchmark queries (q1–q8 plus the full-scale * variants of
// q2/q3/q4/q6), the RDF query-space model of Section 2.2 (triple patterns
// p1–p8 and join patterns A/B/C, with the Table 2 coverage analysis), and
// the SQL text generator that plays the role of the authors' Perl script.
//
// Queries execute through the declarative plan layer: PlanFor declares each
// query once as a logical operator DAG and a shared executor lowers it onto
// any scheme from its physical properties (PhysicalSource). Two executors
// share that lowering:
//
//   - the materializing executor (exec.go) evaluates operator-at-a-time,
//     one memoized relation per plan node — the reference for results and
//     for fully-drained simulated charges;
//   - the streaming executor (stream.go, ExecOptions{Streaming: true})
//     pulls fixed-size row batches through iterator pipelines with no
//     materialization barriers except hash builds, grouping and full
//     sorts. LIMIT and the bounded-heap TopN (n·⌈log₂ k⌉ comparisons)
//     propagate early termination into the physical scans, so bounded
//     queries stop paying simulated I/O and hold only a few batches of
//     intermediate state (Trace.PeakBytes).
//
// The two executors produce byte-identical results — including row order —
// on every scheme; the serving layer streams by default. ExecutePlanCtx
// checks cancellation at batch boundaries, and ExecOptions.Workers fans
// partitioned scans over a worker pool with deterministic charge totals.
package core
