package core

import (
	"runtime"
	"sync"

	"blackswan/internal/rdf"
)

// PartitionByProp splits ts into per-property triple lists, preserving the
// input's relative order within every property — the order contract both
// vertically-partitioned loaders build on. With workers > 1 the split runs
// as a two-phase parallel scan: contiguous ranges partition locally, then
// the local maps concatenate in range order, which reproduces the
// sequential result exactly (the equivalence is test-enforced). The
// returned slices are shared views the caller must not mutate when the
// same partition feeds several loaders; loaders that sort copy first.
func PartitionByProp(ts []rdf.Triple, workers int) map[rdf.ID][]rdf.Triple {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ts) {
		workers = len(ts)
	}
	if workers <= 1 {
		out := make(map[rdf.ID][]rdf.Triple)
		for _, t := range ts {
			out[t.P] = append(out[t.P], t)
		}
		return out
	}
	locals := make([]map[rdf.ID][]rdf.Triple, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := len(ts) * w / workers
		hi := len(ts) * (w + 1) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			local := make(map[rdf.ID][]rdf.Triple)
			for _, t := range ts[lo:hi] {
				local[t.P] = append(local[t.P], t)
			}
			locals[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	// Merge in range order: per property, earlier ranges precede later
	// ones, so concatenation restores the sequential order.
	out := make(map[rdf.ID][]rdf.Triple, len(locals[0]))
	for _, local := range locals {
		for p, part := range local {
			out[p] = append(out[p], part...)
		}
	}
	return out
}
