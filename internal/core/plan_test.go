package core

import (
	"fmt"
	"testing"

	"blackswan/internal/colstore"
	"blackswan/internal/rdf"
	"blackswan/internal/rowstore"
)

// planFixture loads the crafted graph into all four schemes as
// PhysicalSources keyed by a short name.
func planFixture(t *testing.T) (*craftedFixture, map[string]PhysicalSource) {
	t.Helper()
	fx := newCrafted(t)
	srcs := map[string]PhysicalSource{}
	{
		db, err := LoadRowTriple(rowstore.NewEngine(newStore()), fx.g, fx.cat, rdf.PSO, rdf.AllOrders())
		if err != nil {
			t.Fatal(err)
		}
		srcs["rowtriple"] = db
	}
	{
		db, err := LoadRowVert(rowstore.NewEngine(newStore()), fx.g, fx.cat)
		if err != nil {
			t.Fatal(err)
		}
		srcs["rowvert"] = db
	}
	{
		db, err := LoadColTriple(colstore.NewEngine(newStore()), fx.g, fx.cat, rdf.PSO)
		if err != nil {
			t.Fatal(err)
		}
		srcs["coltriple"] = db
	}
	{
		db, err := LoadColVert(colstore.NewEngine(newStore()), fx.g, fx.cat)
		if err != nil {
			t.Fatal(err)
		}
		srcs["colvert"] = db
	}
	return fx, srcs
}

// TestPlanForCoversBenchmark asserts every benchmark query has a plan whose
// Access leaves are exactly the query's basic graph pattern — the plan
// layer and the Table 2 coverage analysis share one pattern model.
func TestPlanForCoversBenchmark(t *testing.T) {
	fx := newCrafted(t)
	c := fx.cat.Consts
	for _, q := range BenchmarkQueries() {
		p, err := PlanFor(q, c)
		if err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		want := PatternsOf(q.ID, c)
		got := p.Accesses()
		if len(got) != len(want) {
			t.Fatalf("%v: %d accesses, want %d patterns", q, len(got), len(want))
		}
		for i, a := range got {
			if a.Pattern != want[i] {
				t.Errorf("%v access %d: %+v, want %+v", q, i, a.Pattern, want[i])
			}
		}
	}
	if _, err := PlanFor(Query{ID: 0}, c); err == nil {
		t.Error("PlanFor accepted an invalid query")
	}
	if _, err := PlanFor(Query{ID: Q1, Star: true}, c); err == nil {
		t.Error("PlanFor accepted q1*")
	}
}

// TestLoweringMergeVsHash asserts the executor's join-algorithm selection:
// subject-subject joins run as linear merge joins on the SO-clustered
// vertical schemes (the paper's "fast (linear) merge join") and as hash
// joins on the triple-stores, whose scan order is index-dependent.
func TestLoweringMergeVsHash(t *testing.T) {
	_, srcs := planFixture(t)
	cases := []struct {
		src   string
		q     Query
		merge []bool // expected per executed join, in order
	}{
		{"rowvert", Query{ID: Q7}, []bool{true, true}},
		{"colvert", Query{ID: Q7}, []bool{true, true}},
		{"rowtriple", Query{ID: Q7}, []bool{false, false}},
		{"coltriple", Query{ID: Q7}, []bool{false, false}},
		// q5's first join is subject-subject (merge on vert); its second
		// joins an unordered intermediate on x (hash everywhere).
		{"rowvert", Query{ID: Q5}, []bool{true, false}},
		{"coltriple", Query{ID: Q5}, []bool{false, false}},
	}
	for _, tc := range cases {
		_, tr, err := ExecuteTraced(srcs[tc.src], tc.q, ExecOptions{})
		if err != nil {
			t.Fatalf("%s %v: %v", tc.src, tc.q, err)
		}
		if len(tr.Joins) != len(tc.merge) {
			t.Fatalf("%s %v: %d joins, want %d (%+v)", tc.src, tc.q, len(tr.Joins), len(tc.merge), tr.Joins)
		}
		for i, want := range tc.merge {
			if tr.Joins[i].Merge != want {
				t.Errorf("%s %v join %d (%s): merge=%v, want %v",
					tc.src, tc.q, i, tr.Joins[i].Var, tr.Joins[i].Merge, want)
			}
		}
	}
}

// TestLoweringPartitionFanout asserts restriction pushdown: on partitioned
// schemes the unbound-property access of a restricted query visits exactly
// the interesting tables, its star variant visits the full roster, and
// triple-stores never fan out.
func TestLoweringPartitionFanout(t *testing.T) {
	fx, srcs := planFixture(t)
	nInteresting := len(fx.cat.Interesting)
	nAll := len(fx.cat.AllProps)
	cases := []struct {
		src   string
		q     Query
		scans int
	}{
		{"rowvert", Query{ID: Q2}, nInteresting},
		{"rowvert", Query{ID: Q2, Star: true}, nAll},
		{"colvert", Query{ID: Q6}, nInteresting},
		{"colvert", Query{ID: Q6, Star: true}, nAll},
		// q8 reads every property table twice (objects of <conferences>,
		// then the join back over all triples).
		{"rowvert", Query{ID: Q8}, 2 * nAll},
		{"rowtriple", Query{ID: Q2}, 0},
		{"coltriple", Query{ID: Q2, Star: true}, 0},
	}
	for _, tc := range cases {
		_, tr, err := ExecuteTraced(srcs[tc.src], tc.q, ExecOptions{})
		if err != nil {
			t.Fatalf("%s %v: %v", tc.src, tc.q, err)
		}
		if tr.PartitionScans != tc.scans {
			t.Errorf("%s %v: %d partition scans, want %d", tc.src, tc.q, tr.PartitionScans, tc.scans)
		}
	}
}

// TestParallelExecutionDeterministic asserts the worker-pool mode returns
// byte-identical relations (same rows, same order) as sequential execution
// on every scheme and query — the merge order is fixed by property order,
// not scheduling.
func TestParallelExecutionDeterministic(t *testing.T) {
	_, srcs := planFixture(t)
	for name, src := range srcs {
		for _, q := range BenchmarkQueries() {
			seq, err := Execute(src, q)
			if err != nil {
				t.Fatalf("%s %v: %v", name, q, err)
			}
			par, tr, err := ExecuteTraced(src, q, ExecOptions{Workers: 8})
			if err != nil {
				t.Fatalf("%s %v parallel: %v", name, q, err)
			}
			if seq.W != par.W || len(seq.Data) != len(par.Data) {
				t.Fatalf("%s %v: parallel shape (%d,%d) != sequential (%d,%d)",
					name, q, par.W, len(par.Data), seq.W, len(seq.Data))
			}
			for i := range seq.Data {
				if seq.Data[i] != par.Data[i] {
					t.Fatalf("%s %v: parallel result diverges at value %d", name, q, i)
				}
			}
			if tr.PartitionScans > 1 && !tr.Parallel {
				t.Errorf("%s %v: fan-out did not use the worker pool", name, q)
			}
		}
	}
}

// TestProjectionPushdown asserts the demand analysis: q1 needs only the
// object column of its single access, q2 needs subject and property but
// not the object.
func TestProjectionPushdown(t *testing.T) {
	fx := newCrafted(t)
	c := fx.cat.Consts
	for _, tc := range []struct {
		q    Query
		need []map[string]bool // demanded vars per access, in plan order
	}{
		{Query{ID: Q1}, []map[string]bool{{"o": true}}},
		{Query{ID: Q2}, []map[string]bool{{"s": true}, {"s": true, "p": true}}},
		{Query{ID: Q3}, []map[string]bool{{"s": true}, {"s": true, "p": true, "o": true}}},
	} {
		p, err := PlanFor(tc.q, c)
		if err != nil {
			t.Fatal(err)
		}
		req := requiredVars(p.Root)
		accs := p.Accesses()
		if len(accs) != len(tc.need) {
			t.Fatalf("%v: %d accesses", tc.q, len(accs))
		}
		for i, a := range accs {
			got := req[a]
			if fmt.Sprint(got) != fmt.Sprint(tc.need[i]) {
				t.Errorf("%v access %d: demanded %v, want %v", tc.q, i, got, tc.need[i])
			}
		}
	}
}
