package core

import (
	"fmt"
	"sort"

	"blackswan/internal/rdf"
	"blackswan/internal/rel"
)

// TermRef is one position of a triple pattern: either a constant term or a
// named variable (Section 2.2: "any of the subject, property or object can
// be bound to a variable").
type TermRef struct {
	Const rdf.ID
	Var   string
}

// C makes a constant term reference.
func C(id rdf.ID) TermRef { return TermRef{Const: id} }

// V makes a variable term reference.
func V(name string) TermRef { return TermRef{Var: name} }

// Bound reports whether the reference is a constant.
func (t TermRef) Bound() bool { return t.Const != rdf.NoID }

// TriplePattern is a simple triple query pattern (s, p, o) with any subset
// of positions bound — the left table of the paper's Figure 2.
type TriplePattern struct {
	S, P, O TermRef
}

// Pat builds a pattern.
func Pat(s, p, o TermRef) TriplePattern { return TriplePattern{S: s, P: p, O: o} }

// Class returns the pattern class p1..p8 of Figure 2:
//
//	p1 (s,p,o)   p2 (?s,p,o)   p3 (s,?p,o)   p4 (s,p,?o)
//	p5 (?s,?p,o) p6 (s,?p,?o)  p7 (?s,p,?o)  p8 (?s,?p,?o)
func (tp TriplePattern) Class() int {
	switch {
	case tp.S.Bound() && tp.P.Bound() && tp.O.Bound():
		return 1
	case !tp.S.Bound() && tp.P.Bound() && tp.O.Bound():
		return 2
	case tp.S.Bound() && !tp.P.Bound() && tp.O.Bound():
		return 3
	case tp.S.Bound() && tp.P.Bound() && !tp.O.Bound():
		return 4
	case !tp.S.Bound() && !tp.P.Bound() && tp.O.Bound():
		return 5
	case tp.S.Bound() && !tp.P.Bound() && !tp.O.Bound():
		return 6
	case !tp.S.Bound() && tp.P.Bound() && !tp.O.Bound():
		return 7
	default:
		return 8
	}
}

// JoinClass names the join patterns of Figure 2 (right table): A joins two
// subjects, B joins two objects, C joins the object of one pattern with the
// subject of the other. The remaining equality predicates (s=p′, o=p′, …)
// belong to RDF/S reasoning and are not exercised by the benchmark.
type JoinClass byte

const (
	JoinA JoinClass = 'A'
	JoinB JoinClass = 'B'
	JoinC JoinClass = 'C'
)

// Joins classifies the join predicates implied by shared variables between
// two patterns, sorted for determinism.
func Joins(a, b TriplePattern) []JoinClass {
	var out []JoinClass
	shared := func(x, y TermRef) bool {
		return !x.Bound() && !y.Bound() && x.Var != "" && x.Var == y.Var
	}
	if shared(a.S, b.S) {
		out = append(out, JoinA)
	}
	if shared(a.O, b.O) {
		out = append(out, JoinB)
	}
	if shared(a.O, b.S) || shared(a.S, b.O) {
		out = append(out, JoinC)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Coverage is one row of the paper's Table 2: which triple-pattern classes
// and join-pattern classes a query exercises.
type Coverage struct {
	Query    QueryID
	Patterns []int
	Joins    []JoinClass
}

// PatternsOf returns the triple-pattern graph of each benchmark query, per
// the graph interpretations of Figures 3 and 4. The patterns determine the
// Table 2 coverage; filters (o != Text, HAVING, aggregation) are not part of
// the pattern space.
func PatternsOf(id QueryID, c Constants) []TriplePattern {
	switch id {
	case Q1:
		return []TriplePattern{Pat(V("s"), C(c.Type), V("o"))}
	case Q2, Q3:
		return []TriplePattern{
			Pat(V("s"), C(c.Type), C(c.Text)),
			Pat(V("s"), V("p"), V("o")),
		}
	case Q4:
		return []TriplePattern{
			Pat(V("s"), C(c.Type), C(c.Text)),
			Pat(V("s"), V("p"), V("o")),
			Pat(V("s"), C(c.Language), C(c.French)),
		}
	case Q5:
		return []TriplePattern{
			Pat(V("s"), C(c.Origin), C(c.DLC)),
			Pat(V("s"), C(c.Records), V("x")),
			Pat(V("x"), C(c.Type), V("t")),
		}
	case Q6:
		return []TriplePattern{
			Pat(V("s"), C(c.Type), C(c.Text)),
			Pat(V("r"), C(c.Records), V("s")),
			Pat(V("s"), V("p"), V("o")),
		}
	case Q7:
		return []TriplePattern{
			Pat(V("s"), C(c.Point), C(c.End)),
			Pat(V("s"), C(c.Encoding), V("e")),
			Pat(V("s"), C(c.Type), V("t")),
		}
	case Q8:
		return []TriplePattern{
			Pat(C(c.Conferences), V("p"), V("o")),
			Pat(V("s"), V("p2"), V("o")),
		}
	default:
		panic(fmt.Sprintf("core: no patterns for query %d", id))
	}
}

// CoverageOf computes one Table 2 row from a query's pattern graph.
func CoverageOf(id QueryID, c Constants) Coverage {
	pats := PatternsOf(id, c)
	classSet := map[int]bool{}
	for _, p := range pats {
		classSet[p.Class()] = true
	}
	joinSet := map[JoinClass]bool{}
	for i := 0; i < len(pats); i++ {
		for j := i + 1; j < len(pats); j++ {
			for _, jc := range Joins(pats[i], pats[j]) {
				joinSet[jc] = true
			}
		}
	}
	cov := Coverage{Query: id}
	for cl := 1; cl <= 8; cl++ {
		if classSet[cl] {
			cov.Patterns = append(cov.Patterns, cl)
		}
	}
	for _, jc := range []JoinClass{JoinA, JoinB, JoinC} {
		if joinSet[jc] {
			cov.Joins = append(cov.Joins, jc)
		}
	}
	return cov
}

// Table2 computes the coverage of the whole benchmark — the paper's Table 2.
func Table2(c Constants) []Coverage {
	out := make([]Coverage, 0, 8)
	for id := Q1; id <= Q8; id++ {
		out = append(out, CoverageOf(id, c))
	}
	return out
}

// TripleSource is pattern-level access to a loaded storage scheme: it
// returns the (s, p, o) rows matching a simple triple pattern with the given
// positions bound (rdf.NoID means unbound). All four Database
// implementations provide it, which makes EvalBGP scheme-independent.
type TripleSource interface {
	Match(s, p, o rdf.ID) *rel.Rel
}

// EvalBGP evaluates a conjunctive basic graph pattern over any storage
// scheme, returning one row per solution with columns in order of first
// variable appearance (and that variable order as the second result).
//
// This is the general query-space API built on the Section 2.2 model; the
// twelve benchmark queries run through the declarative plan layer
// (plan.go, exec.go) instead, because they need aggregation, HAVING,
// unions and inequality filters on top of their patterns.
func EvalBGP(src TripleSource, patterns []TriplePattern) (*rel.Rel, []string) {
	if len(patterns) == 0 {
		return rel.New(1), nil
	}
	var vars []string
	varIdx := map[string]int{}
	addVar := func(name string) {
		if name == "" {
			return
		}
		if _, ok := varIdx[name]; !ok {
			varIdx[name] = len(vars)
			vars = append(vars, name)
		}
	}

	// state holds one row per partial solution over vars seen so far. A
	// nil state with ok=true means "no variables bound yet, still
	// satisfiable" (all-constant patterns act as existence filters).
	var state *rel.Rel
	ok := true
	for _, tp := range patterns {
		if !ok {
			break
		}
		rows := src.Match(tp.S.Const, tp.P.Const, tp.O.Const)
		// Positions of this pattern's variables within (s, p, o).
		type slot struct {
			name string
			col  int
		}
		var slots []slot
		for col, ref := range []TermRef{tp.S, tp.P, tp.O} {
			if !ref.Bound() && ref.Var != "" {
				slots = append(slots, slot{ref.Var, col})
			}
		}
		// Same variable twice in one pattern means an intra-pattern
		// equality filter (e.g. (?x, p, ?x)).
		filtered := rel.New(3)
		for i := 0; i < rows.Len(); i++ {
			row := rows.Row(i)
			ok := true
			seen := map[string]uint64{}
			for _, sl := range slots {
				if prev, dup := seen[sl.name]; dup && prev != row[sl.col] {
					ok = false
					break
				}
				seen[sl.name] = row[sl.col]
			}
			if ok {
				filtered.Data = append(filtered.Data, row...)
			}
		}
		rows = filtered

		if len(slots) == 0 {
			// All-constant pattern: pure existence filter.
			if rows.Len() == 0 {
				ok = false
				if state != nil {
					state.Data = state.Data[:0]
				}
			}
			continue
		}

		if state == nil {
			for _, sl := range slots {
				addVar(sl.name)
			}
			state = rel.New(len(vars))
			for i := 0; i < rows.Len(); i++ {
				row := rows.Row(i)
				vals := make([]uint64, len(vars))
				for _, sl := range slots {
					vals[varIdx[sl.name]] = row[sl.col]
				}
				state.Data = append(state.Data, vals...)
			}
			continue
		}

		// Split this pattern's variables into join vars (already bound in
		// state) and fresh vars.
		var joins, fresh []slot
		for _, sl := range slots {
			if _, ok := varIdx[sl.name]; ok {
				joins = append(joins, sl)
			} else {
				fresh = append(fresh, sl)
			}
		}
		for _, sl := range fresh {
			addVar(sl.name)
		}
		// Hash the pattern rows on the join-variable values.
		ht := make(map[string][]int, rows.Len())
		keyOf := func(row []uint64) string {
			buf := make([]byte, 0, len(joins)*8)
			for _, sl := range joins {
				v := row[sl.col]
				buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
					byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
			}
			return string(buf)
		}
		for i := 0; i < rows.Len(); i++ {
			ht[keyOf(rows.Row(i))] = append(ht[keyOf(rows.Row(i))], i)
		}
		next := rel.New(len(vars))
		oldW := state.W
		for i := 0; i < state.Len(); i++ {
			srow := state.Row(i)
			buf := make([]byte, 0, len(joins)*8)
			for _, sl := range joins {
				v := srow[varIdx[sl.name]]
				buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
					byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
			}
			for _, ri := range ht[string(buf)] {
				rrow := rows.Row(ri)
				vals := make([]uint64, len(vars))
				copy(vals, srow[:oldW])
				for _, sl := range fresh {
					vals[varIdx[sl.name]] = rrow[sl.col]
				}
				next.Data = append(next.Data, vals...)
			}
		}
		state = next
	}
	if state == nil {
		// Only constant patterns appeared: report satisfiability as a
		// single-column relation with one row iff all patterns matched.
		state = rel.New(1)
		if ok {
			state.Append(1)
		}
	}
	return state, vars
}
