package core

import (
	"fmt"
	"strings"
)

// SQLStats summarizes the structural complexity of a generated SQL
// statement — the quantities behind the paper's observation that full-scale
// vertically-partitioned queries "contain more than two hundred unions and
// joins" and "seriously challenge the optimizer of DBX".
type SQLStats struct {
	Unions int
	Joins  int
	Tables int // table references in FROM clauses
	Bytes  int // statement size
}

// TripleSQL returns the triple-store SQL of the paper's appendix for q,
// with the dictionary-encoded constants rendered as the paper's tokens.
func TripleSQL(q Query) (string, error) {
	if !q.Valid() {
		return "", fmt.Errorf("core: invalid query %v", q)
	}
	propJoin := func(alias string) (from, where string) {
		if !q.Restricted() {
			return "", ""
		}
		return ", properties P", fmt.Sprintf("\n  AND P.prop = %s.prop", alias)
	}
	switch q.ID {
	case Q1:
		return `SELECT A.obj, count(*)
FROM triples AS A
WHERE A.prop = '<type>'
GROUP BY A.obj;`, nil
	case Q2:
		f, w := propJoin("B")
		return fmt.Sprintf(`SELECT B.prop, count(*)
FROM triples AS A, triples AS B%s
WHERE A.subj = B.subj
  AND A.prop = '<type>'
  AND A.obj = '<Text>'%s
GROUP BY B.prop;`, f, w), nil
	case Q3:
		f, w := propJoin("B")
		return fmt.Sprintf(`SELECT B.prop, B.obj, count(*)
FROM triples AS A, triples AS B%s
WHERE A.subj = B.subj
  AND A.prop = '<type>'
  AND A.obj = '<Text>'%s
GROUP BY B.prop, B.obj
HAVING count(*) > 1;`, f, w), nil
	case Q4:
		f, w := propJoin("B")
		return fmt.Sprintf(`SELECT B.prop, B.obj, count(*)
FROM triples AS A, triples AS B, triples AS C%s
WHERE A.subj = B.subj
  AND A.prop = '<type>'
  AND A.obj = '<Text>'%s
  AND C.subj = B.subj
  AND C.prop = '<language>'
  AND C.obj = '<language/iso639-2b/fre>'
GROUP BY B.prop, B.obj
HAVING count(*) > 1;`, f, w), nil
	case Q5:
		return `SELECT B.subj, C.obj
FROM triples AS A, triples AS B, triples AS C
WHERE A.subj = B.subj
  AND A.prop = '<origin>'
  AND A.obj = '<info:marcorg/DLC>'
  AND B.prop = '<records>'
  AND B.obj = C.subj
  AND C.prop = '<type>'
  AND C.obj != '<Text>';`, nil
	case Q6:
		f, w := propJoin("A")
		return fmt.Sprintf(`SELECT A.prop, count(*)
FROM triples AS A%s,
  ((SELECT B.subj FROM triples AS B
    WHERE B.prop = '<type>' AND B.obj = '<Text>')
   UNION
   (SELECT C.subj FROM triples AS C, triples AS D
    WHERE C.prop = '<records>' AND C.obj = D.subj
      AND D.prop = '<type>' AND D.obj = '<Text>')) AS uniontable
WHERE A.subj = uniontable.subj%s
GROUP BY A.prop;`, f, w), nil
	case Q7:
		return `SELECT A.subj, B.obj, C.obj
FROM triples AS A, triples AS B, triples AS C
WHERE A.prop = '<Point>'
  AND A.obj = '"end"'
  AND A.subj = B.subj
  AND B.prop = '<Encoding>'
  AND A.subj = C.subj
  AND C.prop = '<type>';`, nil
	case Q8:
		return `SELECT B.subj
FROM triples AS A, triples AS B
WHERE A.subj = 'conferences'
  AND B.subj != 'conferences'
  AND A.obj = B.obj;`, nil
	default:
		return "", fmt.Errorf("core: no SQL for %v", q)
	}
}

// VertSQL generates the vertically-partitioned SQL for q over the given
// property table names, playing the role of the authors' Perl script ("SQL
// does not provide a mechanism to iterate over the tables in the FROM
// clause", so a front-end must emit one branch per property). It returns
// the statement and its structural statistics.
func VertSQL(q Query, propNames []string) (string, SQLStats, error) {
	if !q.Valid() {
		return "", SQLStats{}, fmt.Errorf("core: invalid query %v", q)
	}
	if len(propNames) == 0 {
		return "", SQLStats{}, fmt.Errorf("core: no property tables")
	}
	var b strings.Builder
	st := SQLStats{}
	union := func(i int) {
		if i > 0 {
			b.WriteString("\nUNION ALL\n")
			st.Unions++
		}
	}
	switch q.ID {
	case Q1:
		b.WriteString("SELECT obj, count(*) FROM type GROUP BY obj;")
		st.Tables = 1
	case Q2, Q6:
		// WITH textsubj AS (...) SELECT per property.
		b.WriteString("WITH textsubj AS (SELECT subj FROM type WHERE obj = '<Text>')\n")
		st.Tables++
		if q.ID == Q6 {
			b.WriteString(",recsubj AS (SELECT r.subj FROM records r, textsubj t WHERE r.obj = t.subj)\n")
			b.WriteString(",usubj AS (SELECT subj FROM textsubj UNION SELECT subj FROM recsubj)\n")
			st.Tables += 2
			st.Joins++
			st.Unions++
		}
		src := "textsubj"
		if q.ID == Q6 {
			src = "usubj"
		}
		for i, p := range propNames {
			union(i)
			fmt.Fprintf(&b, "SELECT '%s' AS prop, count(*) FROM %s p, %s t WHERE p.subj = t.subj", p, p, src)
			st.Tables += 2
			st.Joins++
		}
		b.WriteString(";")
	case Q3, Q4:
		b.WriteString("WITH textsubj AS (SELECT subj FROM type WHERE obj = '<Text>')\n")
		st.Tables++
		extra := ""
		if q.ID == Q4 {
			b.WriteString(",fresubj AS (SELECT subj FROM language WHERE obj = '<language/iso639-2b/fre>')\n")
			st.Tables++
			extra = ", fresubj f"
		}
		for i, p := range propNames {
			union(i)
			fmt.Fprintf(&b, "SELECT '%s' AS prop, p.obj, count(*) FROM %s p, textsubj t%s WHERE p.subj = t.subj",
				p, p, extra)
			st.Tables += 2
			st.Joins++
			if q.ID == Q4 {
				b.WriteString(" AND p.subj = f.subj")
				st.Tables++
				st.Joins++
			}
			b.WriteString(" GROUP BY p.obj HAVING count(*) > 1")
		}
		b.WriteString(";")
	case Q5:
		b.WriteString(`WITH dlcsubj AS (SELECT subj FROM origin WHERE obj = '<info:marcorg/DLC>')
SELECT r.subj, t.obj
FROM records r, dlcsubj d, type t
WHERE r.subj = d.subj AND r.obj = t.subj AND t.obj != '<Text>';`)
		st.Tables = 3
		st.Joins = 2
	case Q7:
		b.WriteString(`SELECT p.subj, e.obj, t.obj
FROM Point p, Encoding e, type t
WHERE p.obj = '"end"' AND p.subj = e.subj AND p.subj = t.subj;`)
		st.Tables = 3
		st.Joins = 2
	case Q8:
		// Phase 1: the temporary table t of Section 4.2.
		b.WriteString("WITH t AS (\n")
		for i, p := range propNames {
			union(i)
			fmt.Fprintf(&b, "SELECT obj FROM %s WHERE subj = 'conferences'", p)
			st.Tables++
		}
		b.WriteString(")\n")
		for i, p := range propNames {
			union(i)
			fmt.Fprintf(&b, "SELECT p.subj FROM %s p, t WHERE p.obj = t.obj AND p.subj != 'conferences'", p)
			st.Tables += 2
			st.Joins++
		}
		b.WriteString(";")
	default:
		return "", SQLStats{}, fmt.Errorf("core: no SQL for %v", q)
	}
	sql := b.String()
	st.Bytes = len(sql)
	return sql, st, nil
}
