package core

import (
	"fmt"
	"math"
	"strings"

	"blackswan/internal/rdf"
)

// FormatPlan renders a plan tree as indented text for golden-file tests
// and diagnostics: one line per node with its operator-specific details,
// constants resolved through term (nil falls back to raw identifiers).
// Shared subexpression nodes print once and are referenced as "^N" on
// later visits, so the DAG shape — and therefore join-order regressions —
// is diffable.
func FormatPlan(root Node, term func(rdf.ID) string) string {
	if term == nil {
		term = func(id rdf.ID) string { return fmt.Sprintf("#%d", id) }
	}
	f := &planFormatter{term: term, ids: map[Node]int{}}
	var b strings.Builder
	f.walk(&b, root, 0)
	return b.String()
}

type planFormatter struct {
	term func(rdf.ID) string
	ids  map[Node]int
	next int
}

func (f *planFormatter) walk(b *strings.Builder, n Node, depth int) {
	indent := strings.Repeat("  ", depth)
	if id, seen := f.ids[n]; seen {
		fmt.Fprintf(b, "%s^%d\n", indent, id)
		return
	}
	f.next++
	f.ids[n] = f.next
	fmt.Fprintf(b, "%s%d: %s\n", indent, f.ids[n], NodeLabel(n, f.term))
	for _, c := range children(n) {
		f.walk(b, c, depth+1)
	}
}

// NodeLabel renders one plan node's operator line — the shared vocabulary
// of FormatPlan, FormatAnalyze and the serving layer's JSON profiles.
// term resolves constants (nil falls back to raw identifiers).
func NodeLabel(n Node, term func(rdf.ID) string) string {
	if term == nil {
		term = func(id rdf.ID) string { return fmt.Sprintf("#%d", id) }
	}
	ref := func(tr TermRef) string {
		if tr.Bound() {
			return term(tr.Const)
		}
		return "?" + tr.Var
	}
	switch x := n.(type) {
	case *Access:
		restrict := ""
		if x.Restrict {
			restrict = " RESTRICT"
		}
		return fmt.Sprintf("Access %s %s %s%s", ref(x.Pattern.S), ref(x.Pattern.P), ref(x.Pattern.O), restrict)
	case *Join:
		return "Join"
	case *LeftJoin:
		return "LeftJoin"
	case *FilterNe:
		return fmt.Sprintf("FilterNe ?%s != %s", x.Col, term(x.Value))
	case *FilterEqCols:
		return fmt.Sprintf("FilterEqCols ?%s == ?%s", x.A, x.B)
	case *FilterRange:
		lo, hi := "(-inf", "+inf)"
		if !math.IsInf(x.Lo, -1) {
			br := "("
			if x.IncLo {
				br = "["
			}
			lo = fmt.Sprintf("%s%g", br, x.Lo)
		}
		if !math.IsInf(x.Hi, 1) {
			br := ")"
			if x.IncHi {
				br = "]"
			}
			hi = fmt.Sprintf("%g%s", x.Hi, br)
		}
		return fmt.Sprintf("FilterRange ?%s in %s, %s", x.Col, lo, hi)
	case *Distinct:
		return "Distinct"
	case *Union:
		return "Union"
	case *Group:
		return fmt.Sprintf("Group by %s", strings.Join(x.Keys, ", "))
	case *Having:
		return fmt.Sprintf("Having %s > %d", x.Col, x.Min)
	case *Project:
		if x.As != nil {
			pairs := make([]string, len(x.Cols))
			for i := range x.Cols {
				pairs[i] = x.Cols[i] + "→" + x.As[i]
			}
			return fmt.Sprintf("Project %s", strings.Join(pairs, ", "))
		}
		return fmt.Sprintf("Project %s", strings.Join(x.Cols, ", "))
	case *TopN:
		keys := make([]string, len(x.Keys))
		for i, k := range x.Keys {
			keys[i] = "?" + k.Col
			if k.Desc {
				keys[i] += " DESC"
			}
			if k.Count {
				keys[i] += " (count)"
			}
		}
		if x.Limit >= 0 {
			return fmt.Sprintf("TopN %s LIMIT %d", strings.Join(keys, ", "), x.Limit)
		}
		return fmt.Sprintf("TopN %s", strings.Join(keys, ", "))
	case *Limit:
		return fmt.Sprintf("Limit %d", x.N)
	default:
		return fmt.Sprintf("%T", n)
	}
}
