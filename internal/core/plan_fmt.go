package core

import (
	"fmt"
	"math"
	"strings"

	"blackswan/internal/rdf"
)

// FormatPlan renders a plan tree as indented text for golden-file tests
// and diagnostics: one line per node with its operator-specific details,
// constants resolved through term (nil falls back to raw identifiers).
// Shared subexpression nodes print once and are referenced as "^N" on
// later visits, so the DAG shape — and therefore join-order regressions —
// is diffable.
func FormatPlan(root Node, term func(rdf.ID) string) string {
	if term == nil {
		term = func(id rdf.ID) string { return fmt.Sprintf("#%d", id) }
	}
	f := &planFormatter{term: term, ids: map[Node]int{}}
	var b strings.Builder
	f.walk(&b, root, 0)
	return b.String()
}

type planFormatter struct {
	term func(rdf.ID) string
	ids  map[Node]int
	next int
}

func (f *planFormatter) ref(tr TermRef) string {
	if tr.Bound() {
		return f.term(tr.Const)
	}
	return "?" + tr.Var
}

func (f *planFormatter) walk(b *strings.Builder, n Node, depth int) {
	indent := strings.Repeat("  ", depth)
	if id, seen := f.ids[n]; seen {
		fmt.Fprintf(b, "%s^%d\n", indent, id)
		return
	}
	f.next++
	f.ids[n] = f.next
	line := func(format string, args ...any) {
		fmt.Fprintf(b, "%s%d: ", indent, f.ids[n])
		fmt.Fprintf(b, format, args...)
		b.WriteByte('\n')
	}
	switch x := n.(type) {
	case *Access:
		restrict := ""
		if x.Restrict {
			restrict = " RESTRICT"
		}
		line("Access %s %s %s%s", f.ref(x.Pattern.S), f.ref(x.Pattern.P), f.ref(x.Pattern.O), restrict)
	case *Join:
		line("Join")
	case *LeftJoin:
		line("LeftJoin")
	case *FilterNe:
		line("FilterNe ?%s != %s", x.Col, f.term(x.Value))
	case *FilterEqCols:
		line("FilterEqCols ?%s == ?%s", x.A, x.B)
	case *FilterRange:
		lo, hi := "(-inf", "+inf)"
		if !math.IsInf(x.Lo, -1) {
			br := "("
			if x.IncLo {
				br = "["
			}
			lo = fmt.Sprintf("%s%g", br, x.Lo)
		}
		if !math.IsInf(x.Hi, 1) {
			br := ")"
			if x.IncHi {
				br = "]"
			}
			hi = fmt.Sprintf("%g%s", x.Hi, br)
		}
		line("FilterRange ?%s in %s, %s", x.Col, lo, hi)
	case *Distinct:
		line("Distinct")
	case *Union:
		line("Union")
	case *Group:
		line("Group by %s", strings.Join(x.Keys, ", "))
	case *Having:
		line("Having %s > %d", x.Col, x.Min)
	case *Project:
		if x.As != nil {
			pairs := make([]string, len(x.Cols))
			for i := range x.Cols {
				pairs[i] = x.Cols[i] + "→" + x.As[i]
			}
			line("Project %s", strings.Join(pairs, ", "))
		} else {
			line("Project %s", strings.Join(x.Cols, ", "))
		}
	case *TopN:
		keys := make([]string, len(x.Keys))
		for i, k := range x.Keys {
			keys[i] = "?" + k.Col
			if k.Desc {
				keys[i] += " DESC"
			}
			if k.Count {
				keys[i] += " (count)"
			}
		}
		if x.Limit >= 0 {
			line("TopN %s LIMIT %d", strings.Join(keys, ", "), x.Limit)
		} else {
			line("TopN %s", strings.Join(keys, ", "))
		}
	case *Limit:
		line("Limit %d", x.N)
	default:
		line("%T", n)
	}
	for _, c := range children(n) {
		f.walk(b, c, depth+1)
	}
}
