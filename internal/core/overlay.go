package core

import (
	"fmt"

	"blackswan/internal/rdf"
	"blackswan/internal/rel"
)

// This file is the delta-overlay layer of live mutation: an immutable set
// of added and deleted triples (Delta) stacked over any loaded scheme
// (DeltaOverlay), so a commit installs a new logical snapshot without
// rebuilding the physical tables. Scans merge the base minus tombstones
// with the additions; per-property results keep the (s, o)-lexicographic
// order the SO-clustered schemes guarantee, so merge joins still fire on
// the overlay. Periodic compaction (driven by the serving layer) folds an
// overlay back into freshly built tables through the bulk-ingest pipeline.

// Delta is one immutable edit set over a base snapshot: triples added and
// triples deleted (tombstones). Construction fixes the merged catalog, so
// an edit that would invalidate it — deleting every triple of a special or
// interesting property — is rejected before anything is installed.
//
// Invariants the caller must uphold (the serving layer's mutator does):
// adds ∩ base = ∅, dels ⊆ base, adds ∩ dels = ∅. Identifiers must come
// from the base dictionary, which grows append-only, so an overlay and its
// base share one Dict.
type Delta struct {
	// adds is sorted PSO, so the slice decomposes into per-property runs
	// that are (s, o)-lexicographic — ready to merge into ordered scans.
	adds     []rdf.Triple
	addRange map[rdf.ID][2]int
	dels     map[rdf.Triple]struct{}
	// cat is the merged catalog: AllProps is the frequency-ranked roster
	// of (base ∪ adds ∖ dels), exactly what CatalogFromGraph would compute
	// over the folded graph.
	cat  Catalog
	live map[rdf.ID]bool
}

// NewDelta builds the edit set and the merged catalog. baseFreq is the
// per-property triple count of the base snapshot (rdf.Stats.PropFreq);
// baseCat supplies the constants and the interesting selection, which are
// held fixed across mutation. It fails — and the commit must be abandoned
// — when the merged catalog does not validate.
func NewDelta(baseCat Catalog, baseFreq map[rdf.ID]int, adds, dels []rdf.Triple) (*Delta, error) {
	d := &Delta{
		adds: append([]rdf.Triple(nil), adds...),
		dels: make(map[rdf.Triple]struct{}, len(dels)),
	}
	rdf.PSO.Sort(d.adds)
	d.adds = rdf.Dedup(d.adds)
	d.addRange = make(map[rdf.ID][2]int)
	for i := 0; i < len(d.adds); {
		j := i
		for j < len(d.adds) && d.adds[j].P == d.adds[i].P {
			j++
		}
		d.addRange[d.adds[i].P] = [2]int{i, j}
		i = j
	}
	for _, t := range dels {
		d.dels[t] = struct{}{}
	}

	merged := make(map[rdf.ID]int, len(baseFreq))
	for p, n := range baseFreq {
		merged[p] = n
	}
	for _, t := range d.adds {
		merged[t.P]++
	}
	for t := range d.dels {
		merged[t.P]--
	}
	for p, n := range merged {
		if n <= 0 {
			delete(merged, p)
		}
	}
	d.cat = Catalog{
		Consts:      baseCat.Consts,
		AllProps:    rdf.TopK(merged, len(merged)),
		Interesting: baseCat.Interesting,
	}
	if err := d.cat.Validate(); err != nil {
		return nil, fmt.Errorf("core: delta rejected: %w", err)
	}
	d.live = make(map[rdf.ID]bool, len(d.cat.AllProps))
	for _, p := range d.cat.AllProps {
		d.live[p] = true
	}
	return d, nil
}

// Adds returns the additions, sorted PSO. Callers must not mutate it.
func (d *Delta) Adds() []rdf.Triple { return d.adds }

// Dels returns the tombstones in unspecified order.
func (d *Delta) Dels() []rdf.Triple {
	out := make([]rdf.Triple, 0, len(d.dels))
	for t := range d.dels {
		out = append(out, t)
	}
	rdf.SPO.Sort(out)
	return out
}

// Size returns the number of additions and tombstones.
func (d *Delta) Size() (adds, dels int) { return len(d.adds), len(d.dels) }

// Catalog returns the merged catalog of (base ∪ adds ∖ dels).
func (d *Delta) Catalog() Catalog { return d.cat }

// deleted reports whether t is tombstoned.
func (d *Delta) deleted(t rdf.Triple) bool {
	_, ok := d.dels[t]
	return ok
}

// maskMode captures how a base scheme applies the projection-pushdown
// mask, so an overlay's merged rows are byte-identical to the rows a
// from-scratch rebuild of the same scheme would emit. Row stores read
// whole tuples and never mask; the column triple-store zeroes every
// undemanded column; the column vertical scheme materializes the property
// from its table roster, so P stays real while S and O honour the mask.
type maskMode uint8

const (
	maskNone maskMode = iota
	maskSPO           // *ColTriple: every column honours the mask
	maskSO            // *ColVert: P is always real, S and O honour the mask
)

func maskModeOf(src PhysicalSource) maskMode {
	switch src.(type) {
	case *ColTriple:
		return maskSPO
	case *ColVert:
		return maskSO
	default:
		return maskNone
	}
}

// DeltaOverlay layers a Delta over a loaded scheme, implementing the same
// physical interfaces (PhysicalSource and StreamSource) so the executor —
// and the serving layer's snapshot targets — cannot tell an overlay from a
// rebuilt scheme. Reads are wait-free: both halves are immutable.
type DeltaOverlay struct {
	base PhysicalSource
	d    *Delta
	mask maskMode
}

// NewDeltaOverlay wraps base with the edit set d. Overlays do not stack:
// the serving layer folds successive commits into one Delta over the same
// physical base until compaction.
func NewDeltaOverlay(base PhysicalSource, d *Delta) *DeltaOverlay {
	return &DeltaOverlay{base: base, d: d, mask: maskModeOf(base)}
}

// Base returns the wrapped scheme.
func (o *DeltaOverlay) Base() PhysicalSource { return o.base }

// Delta returns the edit set.
func (o *DeltaOverlay) Delta() *Delta { return o.d }

// Label identifies the overlay for diagnostics.
func (o *DeltaOverlay) Label() string {
	type labeled interface{ Label() string }
	if l, ok := o.base.(labeled); ok {
		return l.Label() + "+delta"
	}
	return "overlay+delta"
}

// Cat implements PhysicalSource with the merged catalog.
func (o *DeltaOverlay) Cat() Catalog { return o.d.cat }

// Props implements PhysicalSource: the merged frequency-ranked roster.
func (o *DeltaOverlay) Props() []rdf.ID { return o.d.cat.AllProps }

// PropOrdered implements PhysicalSource: merging preserves the base's
// (s, o)-lexicographic per-property order, so the guarantee carries over.
func (o *DeltaOverlay) PropOrdered() bool { return o.base.PropOrdered() }

// Partitioned implements PhysicalSource.
func (o *DeltaOverlay) Partitioned() bool { return o.base.Partitioned() }

// RestrictProps implements PhysicalSource. The interesting selection is
// fixed across mutation, so the base's filter is the merged filter.
func (o *DeltaOverlay) RestrictProps(rows *rel.Rel, pCol int) *rel.Rel {
	return o.base.RestrictProps(rows, pCol)
}

// Ops implements PhysicalSource.
func (o *DeltaOverlay) Ops() PhysicalOps { return o.base.Ops() }

// addsForProp collects the additions under p matching the bounds, as
// (s, o) pairs in (s, o)-lexicographic order.
func (o *DeltaOverlay) addsForProp(p, s, obj rdf.ID) [][2]uint64 {
	r, ok := o.d.addRange[p]
	if !ok {
		return nil
	}
	var out [][2]uint64
	for _, t := range o.d.adds[r[0]:r[1]] {
		if (s == rdf.NoID || t.S == s) && (obj == rdf.NoID || t.O == obj) {
			out = append(out, [2]uint64{uint64(t.S), uint64(t.O)})
		}
	}
	return out
}

// scanPropMerged returns the real-valued (s, o) rows under p: base rows
// minus tombstones, linearly merged with the additions so a base whose
// ScanProp arrives (s, o)-ordered (all four schemes, under every bound
// combination) stays ordered — the invariant merge joins rely on.
func (o *DeltaOverlay) scanPropMerged(p, s, obj rdf.ID) (*rel.Rel, error) {
	if !o.d.live[p] && o.base.Partitioned() {
		// A property with no surviving triples has no table in a rebuilt
		// partitioned scheme; answer the same way.
		return nil, fmt.Errorf("core: property %d not loaded in %s", p, o.Label())
	}
	adds := o.addsForProp(p, s, obj)
	base, err := o.base.ScanProp(p, s, obj, AllScanCols())
	if err != nil {
		// Delta-only property: the base has no table yet. The additions
		// alone are the scan.
		base = rel.New(2)
	}
	out := rel.NewCap(2, base.Len()+len(adds))
	bi, ai, bn := 0, 0, base.Len()
	for bi < bn || ai < len(adds) {
		if bi < bn {
			row := base.Row(bi)
			if o.d.deleted(rdf.Triple{S: rdf.ID(row[0]), P: p, O: rdf.ID(row[1])}) {
				bi++
				continue
			}
			if ai >= len(adds) || row[0] < adds[ai][0] ||
				(row[0] == adds[ai][0] && row[1] < adds[ai][1]) {
				out.Data = append(out.Data, row[0], row[1])
				bi++
				continue
			}
		}
		out.Data = append(out.Data, adds[ai][0], adds[ai][1])
		ai++
	}
	return out, nil
}

// scanTriplesMerged returns the real-valued (s, p, o) rows matching the
// bounds: base minus tombstones with the additions appended. No consumer
// depends on ScanTriples order (PropOrdered speaks only for ScanProp), so
// a plain concatenation suffices.
func (o *DeltaOverlay) scanTriplesMerged(s, obj rdf.ID) *rel.Rel {
	base := o.base.ScanTriples(s, obj, AllScanCols())
	out := rel.NewCap(3, base.Len()+len(o.d.adds))
	for i, n := 0, base.Len(); i < n; i++ {
		row := base.Row(i)
		if o.d.deleted(rdf.Triple{S: rdf.ID(row[0]), P: rdf.ID(row[1]), O: rdf.ID(row[2])}) {
			continue
		}
		out.Data = append(out.Data, row[0], row[1], row[2])
	}
	for _, t := range o.d.adds {
		if (s == rdf.NoID || t.S == s) && (obj == rdf.NoID || t.O == obj) {
			out.Data = append(out.Data, uint64(t.S), uint64(t.P), uint64(t.O))
		}
	}
	return out
}

// maskSORows zeroes the undemanded columns of a width-2 (s, o) relation in
// place, matching what a rebuilt column scheme would have materialized.
func (o *DeltaOverlay) maskSORows(r *rel.Rel, need ScanCols) *rel.Rel {
	if o.mask == maskNone || (need.S && need.O) {
		return r
	}
	for i, n := 0, r.Len(); i < n; i++ {
		row := r.Row(i)
		if !need.S {
			row[0] = 0
		}
		if !need.O {
			row[1] = 0
		}
	}
	return r
}

// maskTripleRows zeroes the undemanded columns of a width-3 (s, p, o)
// relation in place per the base's masking mode.
func (o *DeltaOverlay) maskTripleRows(r *rel.Rel, need ScanCols) *rel.Rel {
	if o.mask == maskNone {
		return r
	}
	zp := o.mask == maskSPO && !need.P
	if need.S && need.O && !zp {
		return r
	}
	for i, n := 0, r.Len(); i < n; i++ {
		row := r.Row(i)
		if !need.S {
			row[0] = 0
		}
		if zp {
			row[1] = 0
		}
		if !need.O {
			row[2] = 0
		}
	}
	return r
}

// ScanProp implements PhysicalSource over the merged data, honouring the
// base engine's projection-pushdown behaviour.
func (o *DeltaOverlay) ScanProp(p, s, obj rdf.ID, need ScanCols) (*rel.Rel, error) {
	r, err := o.scanPropMerged(p, s, obj)
	if err != nil {
		return nil, err
	}
	return o.maskSORows(r, need), nil
}

// ScanTriples implements PhysicalSource over the merged data.
func (o *DeltaOverlay) ScanTriples(s, obj rdf.ID, need ScanCols) *rel.Rel {
	return o.maskTripleRows(o.scanTriplesMerged(s, obj), need)
}

// Match implements TripleSource with fully materialized values.
func (o *DeltaOverlay) Match(s, p, obj rdf.ID) *rel.Rel {
	if p == rdf.NoID {
		return o.scanTriplesMerged(s, obj)
	}
	so, err := o.scanPropMerged(p, s, obj)
	if err != nil {
		return rel.New(3)
	}
	out := rel.NewCap(3, so.Len())
	for i, n := 0, so.Len(); i < n; i++ {
		row := so.Row(i)
		out.Data = append(out.Data, row[0], uint64(p), row[1])
	}
	return out
}

// ---- streaming ----

// baseStreamProp returns the base's pull iterator for p with all columns
// real, falling back to a materialize-then-chunk wrapper when the base
// does not implement StreamSource.
func (o *DeltaOverlay) baseStreamProp(p, s, obj rdf.ID, batch int) (RelIter, error) {
	if ss, ok := o.base.(StreamSource); ok {
		return ss.StreamProp(p, s, obj, AllScanCols(), batch)
	}
	r, err := o.base.ScanProp(p, s, obj, AllScanCols())
	if err != nil {
		return nil, err
	}
	return &chunkRelIter{rel: r, batch: batch}, nil
}

// StreamProp implements StreamSource: the same merged, masked rows as
// ScanProp, delivered batch by batch. The base iterator is pulled lazily,
// so early termination (TopN, LIMIT) stops the underlying scan.
func (o *DeltaOverlay) StreamProp(p, s, obj rdf.ID, need ScanCols, batchRows int) (RelIter, error) {
	if batchRows <= 0 {
		batchRows = DefaultBatchRows
	}
	if !o.d.live[p] && o.base.Partitioned() {
		return nil, fmt.Errorf("core: property %d not loaded in %s", p, o.Label())
	}
	adds := o.addsForProp(p, s, obj)
	base, err := o.baseStreamProp(p, s, obj, batchRows)
	if err != nil {
		base = &chunkRelIter{rel: rel.New(2), batch: batchRows}
	}
	return &overlayPropIter{o: o, p: p, base: base, adds: adds, need: need, batch: batchRows}, nil
}

// StreamTriples implements StreamSource: the base stream minus tombstones,
// then the additions, masked per the base's mode.
func (o *DeltaOverlay) StreamTriples(s, obj rdf.ID, need ScanCols, batchRows int) RelIter {
	if batchRows <= 0 {
		batchRows = DefaultBatchRows
	}
	var base RelIter
	if ss, ok := o.base.(StreamSource); ok {
		base = ss.StreamTriples(s, obj, AllScanCols(), batchRows)
	} else {
		base = &chunkRelIter{rel: o.base.ScanTriples(s, obj, AllScanCols()), batch: batchRows}
	}
	var adds *rel.Rel
	if len(o.d.adds) > 0 {
		adds = rel.New(3)
		for _, t := range o.d.adds {
			if (s == rdf.NoID || t.S == s) && (obj == rdf.NoID || t.O == obj) {
				adds.Data = append(adds.Data, uint64(t.S), uint64(t.P), uint64(t.O))
			}
		}
	}
	return &overlayTripleIter{o: o, base: base, adds: adds, need: need, batch: batchRows}
}

// overlayPropIter merges a tombstone-filtered base property stream with
// the (already (s, o)-ordered) additions, one batch at a time.
type overlayPropIter struct {
	o     *DeltaOverlay
	p     rdf.ID
	base  RelIter
	buf   *rel.Rel // current base batch (real values)
	bi    int
	done  bool // base exhausted
	adds  [][2]uint64
	ai    int
	need  ScanCols
	batch int
}

// nextBase returns the next live (non-tombstoned) base row, pulling new
// batches as needed; ok is false once the base is exhausted.
func (it *overlayPropIter) nextBase() (row [2]uint64, ok bool, err error) {
	for {
		if it.buf == nil || it.bi >= it.buf.Len() {
			if it.done {
				return row, false, nil
			}
			b, err := it.base.Next()
			if err != nil {
				return row, false, err
			}
			if b == nil || b.Len() == 0 {
				it.done = b == nil
				if b == nil {
					return row, false, nil
				}
				continue
			}
			it.buf, it.bi = b, 0
		}
		r := it.buf.Row(it.bi)
		it.bi++
		if !it.o.d.deleted(rdf.Triple{S: rdf.ID(r[0]), P: it.p, O: rdf.ID(r[1])}) {
			return [2]uint64{r[0], r[1]}, true, nil
		}
	}
}

func (it *overlayPropIter) Next() (*rel.Rel, error) {
	out := rel.NewCap(2, it.batch)
	// peeked holds a base row pulled but not yet emitted across the
	// batch-fill loop.
	var peeked *[2]uint64
	for out.Len() < it.batch {
		if peeked == nil {
			r, ok, err := it.nextBase()
			if err != nil {
				return nil, err
			}
			if ok {
				peeked = &r
			}
		}
		if peeked == nil && it.ai >= len(it.adds) {
			break
		}
		if peeked != nil && (it.ai >= len(it.adds) || peeked[0] < it.adds[it.ai][0] ||
			(peeked[0] == it.adds[it.ai][0] && peeked[1] < it.adds[it.ai][1])) {
			out.Data = append(out.Data, peeked[0], peeked[1])
			peeked = nil
			continue
		}
		out.Data = append(out.Data, it.adds[it.ai][0], it.adds[it.ai][1])
		it.ai++
	}
	if peeked != nil {
		// Push the unconsumed base row back for the next batch.
		rest := rel.NewCap(2, 1+it.buf.Len()-it.bi)
		rest.Data = append(rest.Data, peeked[0], peeked[1])
		if it.buf != nil {
			rest.Data = append(rest.Data, it.buf.Data[it.bi*2:]...)
		}
		it.buf, it.bi = rest, 0
	}
	if out.Len() == 0 {
		return nil, nil
	}
	return it.o.maskSORows(out, it.need), nil
}

func (it *overlayPropIter) Close() { it.base.Close() }

// overlayTripleIter filters tombstones out of the base triple stream and
// appends the additions once the base is exhausted.
type overlayTripleIter struct {
	o     *DeltaOverlay
	base  RelIter
	done  bool
	adds  *rel.Rel // nil when no additions match
	tail  *chunkRelIter
	need  ScanCols
	batch int
}

func (it *overlayTripleIter) Next() (*rel.Rel, error) {
	for !it.done {
		b, err := it.base.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			it.done = true
			break
		}
		out := rel.NewCap(3, b.Len())
		for i, n := 0, b.Len(); i < n; i++ {
			row := b.Row(i)
			if it.o.d.deleted(rdf.Triple{S: rdf.ID(row[0]), P: rdf.ID(row[1]), O: rdf.ID(row[2])}) {
				continue
			}
			out.Data = append(out.Data, row[0], row[1], row[2])
		}
		if out.Len() > 0 {
			return it.o.maskTripleRows(out, it.need), nil
		}
	}
	if it.adds != nil && it.tail == nil {
		it.tail = &chunkRelIter{rel: it.adds, batch: it.batch}
	}
	if it.tail != nil {
		b, err := it.tail.Next()
		if err != nil || b == nil {
			return nil, err
		}
		// Copy before masking: the chunk aliases the shared adds slice.
		out := &rel.Rel{W: 3, Data: append([]uint64(nil), b.Data...)}
		return it.o.maskTripleRows(out, it.need), nil
	}
	return nil, nil
}

func (it *overlayTripleIter) Close() { it.base.Close() }
