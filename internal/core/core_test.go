package core

import (
	"testing"

	"blackswan/internal/colstore"
	"blackswan/internal/datagen"
	"blackswan/internal/rdf"
	"blackswan/internal/rel"
	"blackswan/internal/rowstore"
	"blackswan/internal/simio"
)

// craftedFixture is a tiny graph with hand-computed answers for all twelve
// benchmark queries.
type craftedFixture struct {
	g      *rdf.Graph
	cat    Catalog
	ids    map[string]uint64
	expect map[string]*rel.Rel
}

func newCrafted(t *testing.T) *craftedFixture {
	t.Helper()
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	lit := rdf.NewLiteral

	add := func(s, p string, o rdf.Term) {
		g.Add(iri(s), iri(p), o)
	}
	add("s1", "type", iri("Text"))
	add("s2", "type", iri("Text"))
	add("s3", "type", iri("Date"))
	add("s4", "type", iri("Date"))
	add("s1", "language", iri("fre"))
	add("s2", "language", iri("fre"))
	add("s1", "title", lit("A"))
	add("s2", "title", lit("A"))
	add("s2", "title", lit("B"))
	add("s1", "origin", iri("DLC"))
	add("s1", "records", iri("s3"))
	add("s2", "records", iri("s1"))
	add("s3", "Point", lit("end"))
	add("s3", "encoding", lit("enc1"))
	add("conferences", "topic", lit("A"))
	add("s2", "topic", lit("C"))
	g.Normalize()

	d := g.Dict
	id := func(t rdf.Term) uint64 {
		v, ok := d.Lookup(t)
		if !ok {
			panic("missing term " + t.String())
		}
		return uint64(v)
	}
	ids := map[string]uint64{
		"type": id(iri("type")), "records": id(iri("records")), "origin": id(iri("origin")),
		"language": id(iri("language")), "Point": id(iri("Point")), "encoding": id(iri("encoding")),
		"title": id(iri("title")), "topic": id(iri("topic")),
		"Text": id(iri("Text")), "Date": id(iri("Date")), "DLC": id(iri("DLC")),
		"fre": id(iri("fre")), "end": id(lit("end")), "conferences": id(iri("conferences")),
		"s1": id(iri("s1")), "s2": id(iri("s2")), "s3": id(iri("s3")), "s4": id(iri("s4")),
		"A": id(lit("A")), "B": id(lit("B")), "C": id(lit("C")), "enc1": id(lit("enc1")),
	}

	consts := Constants{
		Type: rdf.ID(ids["type"]), Records: rdf.ID(ids["records"]), Origin: rdf.ID(ids["origin"]),
		Language: rdf.ID(ids["language"]), Point: rdf.ID(ids["Point"]), Encoding: rdf.ID(ids["encoding"]),
		Text: rdf.ID(ids["Text"]), DLC: rdf.ID(ids["DLC"]), French: rdf.ID(ids["fre"]),
		End: rdf.ID(ids["end"]), Conferences: rdf.ID(ids["conferences"]),
	}
	interesting := []rdf.ID{
		consts.Type, consts.Records, consts.Origin, consts.Language,
		consts.Point, consts.Encoding, rdf.ID(ids["title"]),
	}
	cat, err := CatalogFromGraph(g, consts, interesting)
	if err != nil {
		t.Fatalf("CatalogFromGraph: %v", err)
	}

	mk := func(w int, vals ...uint64) *rel.Rel {
		r := rel.New(w)
		for i := 0; i < len(vals); i += w {
			r.Append(vals[i : i+w]...)
		}
		return r
	}
	expect := map[string]*rel.Rel{
		"q1": mk(2, ids["Text"], 2, ids["Date"], 2),
		"q2": mk(2,
			ids["type"], 2, ids["language"], 2, ids["title"], 3,
			ids["origin"], 1, ids["records"], 2),
		"q2*": mk(2,
			ids["type"], 2, ids["language"], 2, ids["title"], 3,
			ids["origin"], 1, ids["records"], 2, ids["topic"], 1),
		"q3":  mk(3, ids["type"], ids["Text"], 2, ids["title"], ids["A"], 2, ids["language"], ids["fre"], 2),
		"q3*": mk(3, ids["type"], ids["Text"], 2, ids["title"], ids["A"], 2, ids["language"], ids["fre"], 2),
		"q4":  mk(3, ids["type"], ids["Text"], 2, ids["title"], ids["A"], 2, ids["language"], ids["fre"], 2),
		"q4*": mk(3, ids["type"], ids["Text"], 2, ids["title"], ids["A"], 2, ids["language"], ids["fre"], 2),
		"q5":  mk(2, ids["s1"], ids["Date"]),
		"q6": mk(2,
			ids["type"], 2, ids["language"], 2, ids["title"], 3,
			ids["origin"], 1, ids["records"], 2),
		"q6*": mk(2,
			ids["type"], 2, ids["language"], 2, ids["title"], 3,
			ids["origin"], 1, ids["records"], 2, ids["topic"], 1),
		"q7": mk(3, ids["s3"], ids["enc1"], ids["Date"]),
		"q8": mk(1, ids["s1"], ids["s2"]),
	}
	return &craftedFixture{g: g, cat: cat, ids: ids, expect: expect}
}

func newStore() *simio.Store {
	return simio.NewStore(simio.Config{Machine: simio.MachineB(), PoolBytes: 1 << 30})
}

// allDatabases loads every engine × scheme × clustering combination.
func allDatabases(t *testing.T, g *rdf.Graph, cat Catalog) []Database {
	t.Helper()
	var dbs []Database

	for _, cl := range []rdf.Order{rdf.SPO, rdf.PSO} {
		eng := rowstore.NewEngine(newStore())
		db, err := LoadRowTriple(eng, g, cat, cl, rdf.AllOrders())
		if err != nil {
			t.Fatalf("LoadRowTriple(%v): %v", cl, err)
		}
		dbs = append(dbs, db)
	}
	{
		eng := rowstore.NewEngine(newStore())
		db, err := LoadRowVert(eng, g, cat)
		if err != nil {
			t.Fatalf("LoadRowVert: %v", err)
		}
		dbs = append(dbs, db)
	}
	for _, cl := range []rdf.Order{rdf.SPO, rdf.PSO} {
		eng := colstore.NewEngine(newStore())
		db, err := LoadColTriple(eng, g, cat, cl)
		if err != nil {
			t.Fatalf("LoadColTriple(%v): %v", cl, err)
		}
		dbs = append(dbs, db)
	}
	{
		eng := colstore.NewEngine(newStore())
		db, err := LoadColVert(eng, g, cat)
		if err != nil {
			t.Fatalf("LoadColVert: %v", err)
		}
		dbs = append(dbs, db)
	}
	return dbs
}

func TestCraftedGraphAllImplementations(t *testing.T) {
	fx := newCrafted(t)
	for _, db := range allDatabases(t, fx.g, fx.cat) {
		for _, q := range BenchmarkQueries() {
			got, err := db.Run(q)
			if err != nil {
				t.Fatalf("%s %v: %v", db.Label(), q, err)
			}
			want := fx.expect[q.String()]
			if !rel.Equal(got, want) {
				t.Errorf("%s %v:\n got  %v\n want %v", db.Label(), q, got, want)
			}
			if got.W != q.ResultWidth() {
				t.Errorf("%s %v: width %d, want %d", db.Label(), q, got.W, q.ResultWidth())
			}
		}
	}
}

// generatedCatalog builds a Catalog from a datagen Dataset.
func generatedCatalog(t *testing.T, ds *datagen.Dataset) Catalog {
	t.Helper()
	v := ds.Vocab
	consts := Constants{
		Type: v.Type, Records: v.Records, Origin: v.Origin, Language: v.Language,
		Point: v.Point, Encoding: v.Encoding, Text: v.Text, DLC: v.DLC,
		French: v.French, End: v.End, Conferences: v.Conferences,
	}
	cat, err := CatalogFromGraph(ds.Graph, consts, ds.Interesting)
	if err != nil {
		t.Fatalf("catalog: %v", err)
	}
	return cat
}

func TestGeneratedDataAllImplementationsAgree(t *testing.T) {
	ds, err := datagen.Generate(datagen.Config{Triples: 30_000, Properties: 60, Interesting: 28, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cat := generatedCatalog(t, ds)
	dbs := allDatabases(t, ds.Graph, cat)
	ref := dbs[0]
	for _, q := range BenchmarkQueries() {
		want, err := ref.Run(q)
		if err != nil {
			t.Fatalf("%s %v: %v", ref.Label(), q, err)
		}
		if want.Len() == 0 {
			t.Errorf("%v returned no rows on generated data — benchmark would be trivial", q)
		}
		for _, db := range dbs[1:] {
			got, err := db.Run(q)
			if err != nil {
				t.Fatalf("%s %v: %v", db.Label(), q, err)
			}
			if !rel.Equal(got, want) {
				t.Errorf("%s %v: %d rows, reference %s has %d (or content differs)",
					db.Label(), q, got.Len(), ref.Label(), want.Len())
			}
		}
	}
}

func TestRestrictedColVertRejectsUnloadedProperties(t *testing.T) {
	fx := newCrafted(t)
	eng := colstore.NewEngine(newStore())
	db, err := LoadColVertRestricted(eng, fx.g, fx.cat)
	if err != nil {
		t.Fatal(err)
	}
	// Restricted queries work.
	for _, q := range []Query{{ID: Q1}, {ID: Q2}, {ID: Q7}} {
		if _, err := db.Run(q); err != nil {
			t.Errorf("%v on restricted load: %v", q, err)
		}
	}
	// Star queries and q8 need all properties.
	for _, q := range []Query{{ID: Q2, Star: true}, {ID: Q8}} {
		if _, err := db.Run(q); err == nil {
			t.Errorf("%v on restricted load should fail", q)
		}
	}
}

func TestQueryValidity(t *testing.T) {
	valid := []Query{{ID: Q1}, {ID: Q2, Star: true}, {ID: Q6, Star: true}, {ID: Q8}}
	for _, q := range valid {
		if !q.Valid() {
			t.Errorf("%v should be valid", q)
		}
	}
	invalid := []Query{{ID: 0}, {ID: 9}, {ID: Q1, Star: true}, {ID: Q5, Star: true}, {ID: Q8, Star: true}}
	for _, q := range invalid {
		if q.Valid() {
			t.Errorf("%v should be invalid", q)
		}
	}
	if len(BenchmarkQueries()) != 12 {
		t.Fatalf("BenchmarkQueries: %d", len(BenchmarkQueries()))
	}
	for _, q := range BenchmarkQueries() {
		if !q.Valid() {
			t.Errorf("benchmark query %v invalid", q)
		}
	}
	if len(OriginalQueries()) != 7 {
		t.Fatal("OriginalQueries != 7")
	}
	if (Query{ID: Q2, Star: true}).String() != "q2*" || (Query{ID: Q5}).String() != "q5" {
		t.Fatal("query naming wrong")
	}
	if (Query{ID: Q2}).Restricted() != true || (Query{ID: Q2, Star: true}).Restricted() != false ||
		(Query{ID: Q5}).Restricted() != false {
		t.Fatal("Restricted wrong")
	}
}

func TestInvalidQueriesRejected(t *testing.T) {
	fx := newCrafted(t)
	for _, db := range allDatabases(t, fx.g, fx.cat) {
		if _, err := db.Run(Query{ID: 42}); err == nil {
			t.Errorf("%s accepted invalid query", db.Label())
		}
		if _, err := db.Run(Query{ID: Q5, Star: true}); err == nil {
			t.Errorf("%s accepted q5*", db.Label())
		}
	}
}

func TestCatalogValidation(t *testing.T) {
	fx := newCrafted(t)
	good := fx.cat
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Interesting = append([]rdf.ID(nil), good.Interesting...)
	bad.Interesting[0] = 9999
	if err := bad.Validate(); err == nil {
		t.Fatal("foreign interesting property accepted")
	}
	bad2 := good
	bad2.Consts.Type = rdf.NoID
	if err := bad2.Validate(); err == nil {
		t.Fatal("unset constant accepted")
	}
	bad3 := good
	bad3.AllProps = nil
	if err := bad3.Validate(); err == nil {
		t.Fatal("empty property roster accepted")
	}
	// Interesting missing a special property.
	bad4 := good
	bad4.Interesting = bad4.Interesting[:2]
	if err := bad4.Validate(); err == nil {
		t.Fatal("interesting list without specials accepted")
	}
}

func TestOrderPermRoundTrip(t *testing.T) {
	tr := rdf.Triple{S: 11, P: 22, O: 33}
	row := []uint64{11, 22, 33} // s, p, o columns
	for _, o := range rdf.AllOrders() {
		p := OrderPerm(o)
		a, b, c := o.Key(tr)
		want := []uint64{uint64(a), uint64(b), uint64(c)}
		for j := 0; j < 3; j++ {
			if row[p[j]] != want[j] {
				t.Fatalf("%v: key field %d = %d, want %d", o, j, row[p[j]], want[j])
			}
		}
	}
}
