package core

import (
	"fmt"

	"blackswan/internal/rdf"
	"blackswan/internal/rel"
	"blackswan/internal/rowstore"
)

// Vertical-table column positions (subject, object).
const (
	vcS = 0
	vcO = 1
)

// RowVert is the vertically-partitioned scheme on the row-store engine: one
// two-column table per property, clustered on SO with an unclustered OS
// index — the "DBX vert SO" rows of Tables 6 and 7.
type RowVert struct {
	eng    *rowstore.Engine
	cat    Catalog
	tables map[rdf.ID]*rowstore.Table
}

// LoadRowVert partitions the graph by property and loads one table each.
func LoadRowVert(eng *rowstore.Engine, g *rdf.Graph, cat Catalog) (*RowVert, error) {
	if err := cat.Validate(); err != nil {
		return nil, err
	}
	parts := partitionByProperty(g)
	d := &RowVert{eng: eng, cat: cat, tables: make(map[rdf.ID]*rowstore.Table, len(parts))}
	for _, p := range cat.AllProps {
		rows, ok := parts[p]
		if !ok {
			return nil, fmt.Errorf("core: catalog property %d has no triples", p)
		}
		t, err := eng.CreateTable(rowstore.TableSpec{
			Name: fmt.Sprintf("prop_%d", p), Width: 2,
			Clustered:      rowstore.Perm{vcS, vcO},
			Secondary:      []rowstore.Perm{{vcO, vcS}},
			PrefixCompress: true,
		}, rows)
		if err != nil {
			return nil, err
		}
		d.tables[p] = t
	}
	return d, nil
}

// partitionByProperty splits the graph into per-property (s, o) relations.
func partitionByProperty(g *rdf.Graph) map[rdf.ID]*rel.Rel {
	parts := make(map[rdf.ID]*rel.Rel)
	for _, t := range g.Triples {
		r, ok := parts[t.P]
		if !ok {
			r = rel.New(2)
			parts[t.P] = r
		}
		r.Data = append(r.Data, uint64(t.S), uint64(t.O))
	}
	return parts
}

// Label implements Database.
func (d *RowVert) Label() string { return "DBX/vert-SO" }

// table returns the partition for p; every catalog property is loaded, so a
// miss is a programming error.
func (d *RowVert) table(p rdf.ID) *rowstore.Table {
	t, ok := d.tables[p]
	if !ok {
		panic(fmt.Sprintf("core: no vertical table for property %d", p))
	}
	return t
}

// Run implements Database.
func (d *RowVert) Run(q Query) (*rel.Rel, error) {
	if !q.Valid() {
		return nil, fmt.Errorf("core: invalid query %v", q)
	}
	switch q.ID {
	case Q1:
		return d.q1(), nil
	case Q2:
		return d.q2(q), nil
	case Q3:
		return d.q3(q), nil
	case Q4:
		return d.q4(q), nil
	case Q5:
		return d.q5(), nil
	case Q6:
		return d.q6(q), nil
	case Q7:
		return d.q7(), nil
	case Q8:
		return d.q8(), nil
	default:
		return nil, fmt.Errorf("core: unreachable query %v", q)
	}
}

// textSubjects returns the width-1 subjects typed <Text>, via the OS index
// of the type table.
func (d *RowVert) textSubjects() *rel.Rel {
	c := d.cat.Consts
	return d.eng.ScanEq(d.table(c.Type), map[int]uint64{vcO: uint64(c.Text)}).Project(vcS)
}

func (d *RowVert) q1() *rel.Rel {
	rows := d.eng.ScanAll(d.table(d.cat.Consts.Type))
	return d.eng.GroupCount(rows, vcO)
}

func (d *RowVert) q2(q Query) *rel.Rel {
	a := d.textSubjects()
	out := rel.New(2)
	for _, p := range d.cat.props(q) {
		j := d.eng.SemiJoinIn(d.eng.ScanAll(d.table(p)), vcS, a, 0)
		if n := j.Len(); n > 0 {
			out.Append(uint64(p), uint64(n))
		}
	}
	out.Sort()
	return out
}

func (d *RowVert) q3(q Query) *rel.Rel {
	a := d.textSubjects()
	out := rel.New(3)
	for _, p := range d.cat.props(q) {
		j := d.eng.SemiJoinIn(d.eng.ScanAll(d.table(p)), vcS, a, 0)
		if j.Len() == 0 {
			continue
		}
		g := d.eng.GroupCount(j, vcO) // (o, count)
		g = d.eng.HavingGT(g, 1, 1)
		for i := 0; i < g.Len(); i++ {
			row := g.Row(i)
			out.Append(uint64(p), row[0], row[1])
		}
	}
	out.Sort()
	return out
}

func (d *RowVert) q4(q Query) *rel.Rel {
	c := d.cat.Consts
	a := d.textSubjects()
	french := d.eng.ScanEq(d.table(c.Language), map[int]uint64{vcO: uint64(c.French)}).Project(vcS)
	out := rel.New(3)
	for _, p := range d.cat.props(q) {
		j := d.eng.SemiJoinIn(d.eng.ScanAll(d.table(p)), vcS, a, 0)
		if j.Len() == 0 {
			continue
		}
		// Join (not semijoin) against the French subjects: SQL's bag
		// semantics multiply counts by the number of matching C rows.
		jf := d.eng.HashJoin(j, french, vcS, 0) // (s, o, C.s)
		if jf.Len() == 0 {
			continue
		}
		g := d.eng.GroupCount(jf, 1) // (o, count)
		g = d.eng.HavingGT(g, 1, 1)
		for i := 0; i < g.Len(); i++ {
			row := g.Row(i)
			out.Append(uint64(p), row[0], row[1])
		}
	}
	out.Sort()
	return out
}

func (d *RowVert) q5() *rel.Rel {
	c := d.cat.Consts
	a := d.eng.ScanEq(d.table(c.Origin), map[int]uint64{vcO: uint64(c.DLC)}).Project(vcS)
	b := d.eng.SemiJoinIn(d.eng.ScanAll(d.table(c.Records)), vcS, a, 0)
	typ := d.eng.FilterNe(d.eng.ScanAll(d.table(c.Type)), vcO, uint64(c.Text))
	j := d.eng.HashJoin(b, typ, vcO, vcS) // 0=B.s 1=B.o 2=C.s 3=C.o
	return j.Project(0, 3)
}

func (d *RowVert) q6(q Query) *rel.Rel {
	c := d.cat.Consts
	u1 := d.textSubjects()
	recs := d.eng.ScanAll(d.table(c.Records))
	u2 := d.eng.SemiJoinIn(recs, vcO, u1, 0).Project(vcS)
	u := d.eng.Distinct(d.eng.Union(u1, u2))
	out := rel.New(2)
	for _, p := range d.cat.props(q) {
		j := d.eng.SemiJoinIn(d.eng.ScanAll(d.table(p)), vcS, u, 0)
		if n := j.Len(); n > 0 {
			out.Append(uint64(p), uint64(n))
		}
	}
	out.Sort()
	return out
}

func (d *RowVert) q7() *rel.Rel {
	c := d.cat.Consts
	// SO-clustered property tables are subject-sorted, so the
	// subject-subject joins run as linear merge joins — the "fewer unions
	// and fast joins" property the paper quotes.
	a := d.eng.ScanEq(d.table(c.Point), map[int]uint64{vcO: uint64(c.End)}).Project(vcS)
	enc := d.eng.ScanAll(d.table(c.Encoding))
	ab := d.eng.MergeJoin(a, enc, 0, vcS) // 0=A.s 1=B.s 2=B.o
	typ := d.eng.ScanAll(d.table(c.Type))
	j := d.eng.MergeJoin(ab, typ, 0, vcS) // + 3=C.s 4=C.o
	return j.Project(0, 2, 4)
}

func (d *RowVert) q8() *rel.Rel {
	c := d.cat.Consts
	// Phase 1: visit every property table, collect the objects of
	// <conferences>; union them into the temporary table t of Section 4.2.
	objs := rel.New(1)
	for _, p := range d.cat.AllProps {
		sel := d.eng.ScanEq(d.table(p), map[int]uint64{vcS: uint64(c.Conferences)})
		objs = d.eng.Union(objs, sel.Project(vcO))
	}
	// Phase 2: join t back against every property table, filtering out the
	// <conferences> subject itself.
	out := rel.New(1)
	for _, p := range d.cat.AllProps {
		b := d.eng.FilterNe(d.eng.ScanAll(d.table(p)), vcS, uint64(c.Conferences))
		j := d.eng.HashJoin(objs, b, 0, vcO) // 0=t.o 1=B.s 2=B.o
		out = d.eng.Union(out, j.Project(1))
	}
	return out
}
