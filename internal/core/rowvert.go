package core

import (
	"fmt"

	"blackswan/internal/rdf"
	"blackswan/internal/rel"
	"blackswan/internal/rowstore"
)

// Vertical-table column positions (subject, object).
const (
	vcS = 0
	vcO = 1
)

// RowVert is the vertically-partitioned scheme on the row-store engine: one
// two-column table per property, clustered on SO with an unclustered OS
// index — the "DBX vert SO" rows of Tables 6 and 7. The file contains only
// the physical access layer; all query logic lives in the shared plan
// executor, which lowers unbound-property accesses to the per-table unions
// the paper warns about.
type RowVert struct {
	execMode
	eng    *rowstore.Engine
	cat    Catalog
	tables map[rdf.ID]*rowstore.Table
}

// LoadRowVert partitions the graph by property and loads one table each.
func LoadRowVert(eng *rowstore.Engine, g *rdf.Graph, cat Catalog) (*RowVert, error) {
	return LoadRowVertParts(eng, g, cat, nil)
}

// LoadRowVertParts is LoadRowVert with a prebuilt per-property partition
// (see PartitionByProp) — the bulk-ingest path computes the partition once,
// in parallel, and feeds it to both vertically-partitioned loaders. A nil
// parts map partitions here, sequentially.
func LoadRowVertParts(eng *rowstore.Engine, g *rdf.Graph, cat Catalog, parts map[rdf.ID][]rdf.Triple) (*RowVert, error) {
	if err := cat.Validate(); err != nil {
		return nil, err
	}
	// Per-property (s, o) relations: converted from a shared partition
	// when the bulk-ingest path provides one, built in a single pass over
	// the graph otherwise.
	rels := make(map[rdf.ID]*rel.Rel)
	if parts != nil {
		for p, ts := range parts {
			rows := rel.NewCap(2, len(ts))
			for _, t := range ts {
				rows.Data = append(rows.Data, uint64(t.S), uint64(t.O))
			}
			rels[p] = rows
		}
	} else {
		for _, t := range g.Triples {
			r, ok := rels[t.P]
			if !ok {
				r = rel.New(2)
				rels[t.P] = r
			}
			r.Data = append(r.Data, uint64(t.S), uint64(t.O))
		}
	}
	d := &RowVert{eng: eng, cat: cat, tables: make(map[rdf.ID]*rowstore.Table, len(rels))}
	for _, p := range cat.AllProps {
		rows, ok := rels[p]
		if !ok {
			return nil, fmt.Errorf("core: catalog property %d has no triples", p)
		}
		t, err := eng.CreateTable(rowstore.TableSpec{
			Name: fmt.Sprintf("prop_%d", p), Width: 2,
			Clustered:      rowstore.Perm{vcS, vcO},
			Secondary:      []rowstore.Perm{{vcO, vcS}},
			PrefixCompress: true,
		}, rows)
		if err != nil {
			return nil, err
		}
		d.tables[p] = t
	}
	return d, nil
}

// Label implements Database.
func (d *RowVert) Label() string { return "DBX/vert-SO" }

// Run implements Database by executing the query's declarative plan.
func (d *RowVert) Run(q Query) (*rel.Rel, error) {
	return ExecuteOpts(d, q, d.opt)
}

// Match implements TripleSource as a union of per-property scans. An
// unbound property iterates every table — the union proliferation the
// paper warns about.
func (d *RowVert) Match(s, p, o rdf.ID) *rel.Rel {
	props := d.cat.AllProps
	if p != rdf.NoID {
		props = []rdf.ID{p}
	}
	out := rel.New(3)
	for _, prop := range props {
		part, err := d.ScanProp(prop, s, o, AllScanCols())
		if err != nil {
			continue // property without a table matches nothing
		}
		for i := 0; i < part.Len(); i++ {
			row := part.Row(i)
			out.Append(row[vcS], uint64(prop), row[vcO])
		}
	}
	return out
}

// ScanProp implements PhysicalSource: an indexed scan of one property
// table (clustered SO for subject bounds, the unclustered OS index for
// object bounds). The need mask is ignored: a row store always reads whole
// tuples.
func (d *RowVert) ScanProp(p, s, o rdf.ID, _ ScanCols) (*rel.Rel, error) {
	t, ok := d.tables[p]
	if !ok {
		return nil, fmt.Errorf("core: property %d not loaded in %s", p, d.Label())
	}
	bound := map[int]uint64{}
	if s != rdf.NoID {
		bound[vcS] = uint64(s)
	}
	if o != rdf.NoID {
		bound[vcO] = uint64(o)
	}
	return d.eng.ScanEq(t, bound), nil
}

// ScanTriples implements PhysicalSource; the executor prefers the
// partitioned fan-out on this scheme, so this is only the Match fallback.
func (d *RowVert) ScanTriples(s, o rdf.ID, _ ScanCols) *rel.Rel {
	return d.Match(s, rdf.NoID, o)
}

// Cat implements PhysicalSource.
func (d *RowVert) Cat() Catalog { return d.cat }

// Props implements PhysicalSource.
func (d *RowVert) Props() []rdf.ID { return d.cat.AllProps }

// PropOrdered implements PhysicalSource: SO clustering returns every
// per-property scan ordered on its first unbound position, which is what
// licenses the linear merge joins the paper credits the scheme with.
func (d *RowVert) PropOrdered() bool { return true }

// Partitioned implements PhysicalSource.
func (d *RowVert) Partitioned() bool { return true }

// RestrictProps implements PhysicalSource; partitioned schemes restrict by
// table selection instead, so this is only a fallback filter.
func (d *RowVert) RestrictProps(rows *rel.Rel, pCol int) *rel.Rel {
	return d.eng.FilterIn(rows, pCol, d.cat.interestingSet())
}

// Ops implements PhysicalSource.
func (d *RowVert) Ops() PhysicalOps { return d.eng }
