package core

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"blackswan/internal/rdf"
	"blackswan/internal/rel"
)

// This file is the per-operator profile collector behind EXPLAIN ANALYZE:
// with ExecOptions.Profile set, both executors record, for every plan node
// they evaluate, the rows and batches it emitted, the simulated CPU and
// I/O it charged, its host wall time, and the live intermediate-result
// bytes observed at its batch boundaries. Collection is observation-only —
// no operator output, row order, or simulated charge changes when
// profiling is on — and costs nothing when it is off (a nil pointer check
// per operator).
//
// Charge attribution works by differencing the engine's charge meter
// around each operator frame (the recursive eval call in the materializing
// executor, each next()/close() of the wrapping iterator in the streaming
// one). Frames nest, so the recorded figures are inclusive of children;
// finish() derives per-node self figures by subtracting each child once.
// Attribution is exact when the plan runs single-goroutine (Workers <= 1,
// the serving default); under the parallel fan-out, prefetch workers
// charge the shared store concurrently, so per-node simulated columns
// become approximate while rows, batches and totals stay exact. The same
// caveat applies to concurrent queries sharing one store: the meter is
// store-global, so a profile taken under concurrent traffic soaks up
// neighbours' charges.

// ChargeMeter is the optional engine extension the profiler snapshots:
// cumulative simulated CPU and I/O nanoseconds plus physical bytes read,
// under the engine's accounting lock. Both storage engines implement it by
// delegating to their simio.Store. Engines without a meter still profile
// rows, batches, host time and peak bytes; the simulated columns read zero.
type ChargeMeter interface {
	Charges() (cpuNs, ioNs, bytesRead int64)
}

// OpProfile is one plan node's recorded actuals. The tree mirrors the
// order the executor actually evaluated nodes in: a shared DAG node
// appears under the parent that first evaluated it, and an access fused
// into a partitioned join appears under that join with the "fused" note
// (its work is charged to the join frame).
type OpProfile struct {
	// Node is the profiled plan node — the identity estimate annotation
	// and label rendering key on.
	Node Node `json:"-"`
	// Note records a lowering decision the plan tree alone cannot show:
	// "hash", "merge", "heap", "sort", "fused", "partitioned".
	Note string
	// Rows and Batches count the node's emitted output (Batches is 1 per
	// materialized result, one per non-empty batch when streaming).
	Rows    int
	Batches int
	// Start is the host-clock instant the executor opened this node's
	// frame: the eval call in the materializing executor, the pipeline
	// build in the streaming one (work then accrues at next() windows).
	// With Host it lets the tracing layer bridge the profile tree into
	// request-scoped spans without re-timing anything.
	Start time.Time
	// CPU, IO, IOBytes and Host are inclusive of children (the node's
	// whole subtree); the Self fields are this node's own share.
	CPU         time.Duration
	IO          time.Duration
	IOBytes     int64
	Host        time.Duration
	SelfCPU     time.Duration
	SelfIO      time.Duration
	SelfIOBytes int64
	SelfHost    time.Duration
	// PeakBytes is the high-water of live intermediate-result bytes
	// observed at this node's operator boundaries while it ran.
	PeakBytes int64
	// EstRows is the optimizer's cardinality estimate for this node, < 0
	// when none was attached (see AnnotateEstimates).
	EstRows  float64
	Children []*OpProfile
}

// charge is one meter reading.
type charge struct {
	cpuNs, ioNs, bytes int64
}

func (c charge) sub(o charge) charge {
	return charge{c.cpuNs - o.cpuNs, c.ioNs - o.ioNs, c.bytes - o.bytes}
}

// profiler threads the collector through one execution. enter/exit calls
// happen only on the evaluating goroutine (eval recursion and streaming
// build/next), so the stack needs no lock; only the meter itself is
// shared with charge-producing workers, and it locks internally.
type profiler struct {
	meter ChargeMeter
	mem   *memTracker
	root  *OpProfile
	stack []*OpProfile
	nodes map[Node]*OpProfile
	// onFinish hooks run at finish(): the streaming partitioned join
	// counts fused-step rows on worker goroutines through atomics and
	// folds them into the (single-goroutine) profile tree here.
	onFinish []func()
}

func newProfiler(ops PhysicalOps, mem *memTracker) *profiler {
	p := &profiler{mem: mem, nodes: map[Node]*OpProfile{}}
	if m, ok := ops.(ChargeMeter); ok {
		p.meter = m
	}
	return p
}

func (p *profiler) charges() charge {
	if p.meter == nil {
		return charge{}
	}
	cpu, io, b := p.meter.Charges()
	return charge{cpu, io, b}
}

// enter opens a profile frame for n under the current frame.
func (p *profiler) enter(n Node) *OpProfile {
	prof := &OpProfile{Node: n, EstRows: -1, Start: time.Now()}
	p.nodes[n] = prof
	if len(p.stack) > 0 {
		top := p.stack[len(p.stack)-1]
		top.Children = append(top.Children, prof)
	} else if p.root == nil {
		p.root = prof
	}
	p.stack = append(p.stack, prof)
	return prof
}

func (p *profiler) exit() {
	p.stack = p.stack[:len(p.stack)-1]
}

// note records a lowering decision on n's profile, if n was profiled.
func (p *profiler) note(n Node, s string) {
	if prof := p.nodes[n]; prof != nil {
		prof.Note = s
	}
}

// add folds one measured window into a profile frame.
func (prof *OpProfile) add(d charge, host time.Duration) {
	prof.CPU += time.Duration(d.cpuNs)
	prof.IO += time.Duration(d.ioNs)
	prof.IOBytes += d.bytes
	prof.Host += host
}

// observe updates the node's live-bytes high-water mark.
func (prof *OpProfile) observe(mem *memTracker) {
	if cur := mem.current(); cur > prof.PeakBytes {
		prof.PeakBytes = cur
	}
}

// finish derives the self figures (inclusive minus children, each child
// subtracted exactly once — the tree has no shared profiles) and returns
// the root, clamping negatives from measurement skew to zero.
func (p *profiler) finish() *OpProfile {
	if p == nil || p.root == nil {
		return nil
	}
	for _, fn := range p.onFinish {
		fn()
	}
	var walk func(prof *OpProfile)
	walk = func(prof *OpProfile) {
		cpu, io, host := prof.CPU, prof.IO, prof.Host
		bytes := prof.IOBytes
		for _, c := range prof.Children {
			walk(c)
			cpu -= c.CPU
			io -= c.IO
			bytes -= c.IOBytes
			host -= c.Host
		}
		prof.SelfCPU = maxDur(cpu, 0)
		prof.SelfIO = maxDur(io, 0)
		prof.SelfHost = maxDur(host, 0)
		if bytes < 0 {
			bytes = 0
		}
		prof.SelfIOBytes = bytes
	}
	walk(p.root)
	return p.root
}

func maxDur(d, floor time.Duration) time.Duration {
	if d < floor {
		return floor
	}
	return d
}

// profIter wraps one streaming operator's finished edge: every
// next()/close() window is measured inclusively (parents wrap children, so
// nesting matches the eval recursion) and emitted batches are tallied.
// Pulled only by the consuming goroutine — prefetch workers run the
// unwrapped per-part iterators, whose charges surface through the meter.
type profIter struct {
	p    *profiler
	prof *OpProfile
	in   iter
}

func (pi *profIter) next() (*rel.Rel, error) {
	c0 := pi.p.charges()
	t0 := time.Now()
	b, err := pi.in.next()
	pi.prof.add(pi.p.charges().sub(c0), time.Since(t0))
	if b != nil {
		pi.prof.Rows += b.Len()
		pi.prof.Batches++
	}
	pi.prof.observe(pi.p.mem)
	return b, err
}

func (pi *profIter) close() {
	c0 := pi.p.charges()
	t0 := time.Now()
	pi.in.close()
	pi.prof.add(pi.p.charges().sub(c0), time.Since(t0))
}

// countIter tallies rows/batches flowing through one per-part pipeline arm
// into shared atomics — safe under the parallel fan-out's workers.
type countIter struct {
	in      iter
	rows    *atomic.Int64
	batches *atomic.Int64
}

func (c *countIter) next() (*rel.Rel, error) {
	b, err := c.in.next()
	if b != nil {
		c.rows.Add(int64(b.Len()))
		c.batches.Add(1)
	}
	return b, err
}

func (c *countIter) close() { c.in.close() }

// AnnotateEstimates attaches per-node optimizer cardinality estimates
// (such as bgp.EstimateCards produces) to the profile tree. Nodes absent
// from the map keep EstRows < 0.
func (prof *OpProfile) AnnotateEstimates(est map[Node]float64) {
	if prof == nil || est == nil {
		return
	}
	if e, ok := est[prof.Node]; ok {
		prof.EstRows = e
	}
	for _, c := range prof.Children {
		c.AnnotateEstimates(est)
	}
}

// Walk visits the profile tree depth-first, parents before children.
func (prof *OpProfile) Walk(fn func(*OpProfile)) {
	if prof == nil {
		return
	}
	fn(prof)
	for _, c := range prof.Children {
		c.Walk(fn)
	}
}

// FormatAnalyze renders a profile tree as the EXPLAIN ANALYZE companion of
// FormatPlan: the same numbered, indented node lines, each annotated with
// actual rows/batches, the optimizer's estimate when attached, the node's
// self share of simulated CPU/IO and host time (inclusive totals live on
// the root line), and the peak live bytes observed at the node.
func FormatAnalyze(prof *OpProfile, term func(rdf.ID) string) string {
	if prof == nil {
		return ""
	}
	if term == nil {
		term = func(id rdf.ID) string { return fmt.Sprintf("#%d", id) }
	}
	var b strings.Builder
	next := 0
	var walk func(p *OpProfile, depth int)
	walk = func(p *OpProfile, depth int) {
		next++
		fmt.Fprintf(&b, "%s%d: %s", strings.Repeat("  ", depth), next, NodeLabel(p.Node, term))
		if p.Note != "" {
			fmt.Fprintf(&b, " [%s]", p.Note)
		}
		fmt.Fprintf(&b, "  rows=%d batches=%d", p.Rows, p.Batches)
		if p.EstRows >= 0 {
			fmt.Fprintf(&b, " est=%.1f", p.EstRows)
		}
		fmt.Fprintf(&b, " cpu=%s io=%s read=%dB host=%s peak=%dB",
			fmtDur(p.SelfCPU), fmtDur(p.SelfIO), p.SelfIOBytes, fmtDur(p.SelfHost), p.PeakBytes)
		if depth == 0 {
			fmt.Fprintf(&b, " (total cpu=%s io=%s read=%dB host=%s)",
				fmtDur(p.CPU), fmtDur(p.IO), p.IOBytes, fmtDur(p.Host))
		}
		b.WriteByte('\n')
		for _, c := range p.Children {
			walk(c, depth+1)
		}
	}
	walk(prof, 0)
	return b.String()
}

// fmtDur rounds durations to a dashboard-friendly precision.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}
