package core

import (
	"testing"

	"blackswan/internal/colstore"
	"blackswan/internal/rdf"
	"blackswan/internal/rowstore"
)

// minimalGraph holds exactly one triple per special property — the smallest
// catalog-valid data set. Several queries are legitimately empty on it.
func minimalGraph(t *testing.T) (*rdf.Graph, Catalog) {
	t.Helper()
	g := rdf.NewGraph()
	d := g.Dict
	consts := Constants{
		Type:        d.InternIRI("type"),
		Records:     d.InternIRI("records"),
		Origin:      d.InternIRI("origin"),
		Language:    d.InternIRI("language"),
		Point:       d.InternIRI("Point"),
		Encoding:    d.InternIRI("Encoding"),
		Text:        d.InternIRI("Text"),
		DLC:         d.InternIRI("DLC"),
		French:      d.InternIRI("fre"),
		End:         d.Intern(rdf.NewLiteral("end")),
		Conferences: d.InternIRI("conferences"),
	}
	s1 := d.InternIRI("s1")
	s2 := d.InternIRI("s2")
	other := d.InternIRI("Other")
	eng := d.InternIRI("eng")
	org := d.InternIRI("org")
	lit := d.Intern(rdf.NewLiteral("enc"))
	start := d.Intern(rdf.NewLiteral("start"))
	// Deliberately: no Text-typed subject, no French speaker, no DLC
	// origin, no "end" point, and conferences shares no objects.
	g.AddIDs(s1, consts.Type, other)
	g.AddIDs(s1, consts.Records, s2)
	g.AddIDs(s2, consts.Type, other)
	g.AddIDs(s1, consts.Origin, org)
	g.AddIDs(s1, consts.Language, eng)
	g.AddIDs(s1, consts.Point, start)
	g.AddIDs(s1, consts.Encoding, lit)
	g.AddIDs(consts.Conferences, consts.Encoding, d.Intern(rdf.NewLiteral("unshared")))
	g.Normalize()

	interesting := []rdf.ID{consts.Type, consts.Records, consts.Origin,
		consts.Language, consts.Point, consts.Encoding}
	cat, err := CatalogFromGraph(g, consts, interesting)
	if err != nil {
		t.Fatal(err)
	}
	return g, cat
}

// TestEmptySelectionsAcrossSchemes checks that queries whose selections
// match nothing return empty (not erroneous) results on every scheme, with
// identical shapes.
func TestEmptySelectionsAcrossSchemes(t *testing.T) {
	g, cat := minimalGraph(t)
	var dbs []Database
	{
		db, err := LoadRowTriple(rowstore.NewEngine(newStore()), g, cat, rdf.PSO, rdf.AllOrders())
		if err != nil {
			t.Fatal(err)
		}
		dbs = append(dbs, db)
	}
	{
		db, err := LoadRowVert(rowstore.NewEngine(newStore()), g, cat)
		if err != nil {
			t.Fatal(err)
		}
		dbs = append(dbs, db)
	}
	{
		db, err := LoadColTriple(colstore.NewEngine(newStore()), g, cat, rdf.SPO)
		if err != nil {
			t.Fatal(err)
		}
		dbs = append(dbs, db)
	}
	{
		db, err := LoadColVert(colstore.NewEngine(newStore()), g, cat)
		if err != nil {
			t.Fatal(err)
		}
		dbs = append(dbs, db)
	}
	// No Text subjects → q2/q3/q4 empty. No DLC → q5 empty. No "end" →
	// q7 empty. No shared objects → q8 empty. q6's union is empty too.
	empty := []Query{
		{ID: Q2}, {ID: Q2, Star: true}, {ID: Q3}, {ID: Q4},
		{ID: Q5}, {ID: Q6}, {ID: Q7}, {ID: Q8},
	}
	for _, db := range dbs {
		for _, q := range empty {
			res, err := db.Run(q)
			if err != nil {
				t.Fatalf("%s %v: %v", db.Label(), q, err)
			}
			if res.Len() != 0 {
				t.Errorf("%s %v: expected empty, got %d rows", db.Label(), q, res.Len())
			}
		}
		// q1 still returns the class histogram.
		res, err := db.Run(Query{ID: Q1})
		if err != nil {
			t.Fatalf("%s q1: %v", db.Label(), err)
		}
		if res.Len() != 1 || res.Row(0)[1] != 2 {
			t.Errorf("%s q1 = %v, want one class with count 2", db.Label(), res)
		}
	}
}

// TestLoadRejectsMissingProperty ensures loaders fail loudly when the
// catalog references a property absent from the data.
func TestLoadRejectsMissingProperty(t *testing.T) {
	g, cat := minimalGraph(t)
	bad := cat
	bad.AllProps = append(append([]rdf.ID(nil), cat.AllProps...), g.Dict.InternIRI("ghost"))
	if _, err := LoadRowVert(rowstore.NewEngine(newStore()), g, bad); err == nil {
		t.Fatal("RowVert accepted a property with no triples")
	}
}

// TestColTripleClusterMapping checks the physical-to-logical column mapping
// for every clustering order.
func TestColTripleClusterMapping(t *testing.T) {
	g, cat := minimalGraph(t)
	for _, cl := range rdf.AllOrders() {
		db, err := LoadColTriple(colstore.NewEngine(newStore()), g, cat, cl)
		if err != nil {
			t.Fatalf("%v: %v", cl, err)
		}
		// Match with everything unbound must return the whole graph.
		rows := db.Match(rdf.NoID, rdf.NoID, rdf.NoID)
		if rows.Len() != g.Len() {
			t.Fatalf("%v: Match(*,*,*) = %d rows, want %d", cl, rows.Len(), g.Len())
		}
		// And a fully bound probe must find an existing triple.
		tr := g.Triples[0]
		if db.Match(tr.S, tr.P, tr.O).Len() != 1 {
			t.Fatalf("%v: point probe failed", cl)
		}
	}
}
