package core

import (
	"context"
	"fmt"
	"testing"

	"blackswan/internal/datagen"
	"blackswan/internal/rowstore"
	"blackswan/internal/simio"
)

// This file tests the streaming executor against its contract: results are
// byte-identical to the materializing executor on every scheme (including
// row order), early termination reaches the physical scans, the bounded
// heap charges n·ceil(log2 k) comparisons, and per-query peak memory stays
// bounded by batches plus operator state rather than whole intermediates.

// streamVariants are the option sets a result-identity test runs beyond the
// materializing baseline: plain streaming, a deliberately awkward batch
// size (exercises batch-boundary logic), and the worker-pool fan-out.
var streamVariants = []ExecOptions{
	{Streaming: true},
	{Streaming: true, BatchRows: 7},
	{Streaming: true, Workers: 3},
}

// TestStreamingByteIdenticalPaperQueries runs the twelve benchmark queries
// on every engine × scheme × clustering combination, comparing the
// streaming executor's raw output — width, row order, bytes — against the
// materializing executor's.
func TestStreamingByteIdenticalPaperQueries(t *testing.T) {
	type fixture struct {
		name string
		dbs  []Database
	}
	var fixtures []fixture
	cf := newCrafted(t)
	fixtures = append(fixtures, fixture{"crafted", allDatabases(t, cf.g, cf.cat)})
	for _, seed := range []int64{100, 101} {
		g, cat := randomFixture(t, seed)
		fixtures = append(fixtures, fixture{fmt.Sprintf("random-%d", seed), allDatabases(t, g, cat)})
	}
	for _, fx := range fixtures {
		for _, db := range fx.dbs {
			src := db.(PhysicalSource)
			for _, q := range BenchmarkQueries() {
				want, wtr, err := ExecuteTraced(src, q, ExecOptions{})
				if err != nil {
					t.Fatalf("%s %s %v: materializing: %v", fx.name, db.Label(), q, err)
				}
				if wtr.Streamed {
					t.Fatalf("%s %s %v: materializing trace claims Streamed", fx.name, db.Label(), q)
				}
				for _, opt := range streamVariants {
					got, gtr, err := ExecuteTraced(src, q, opt)
					if err != nil {
						t.Fatalf("%s %s %v %+v: %v", fx.name, db.Label(), q, opt, err)
					}
					if !gtr.Streamed {
						t.Fatalf("%s %s %v %+v: trace not marked Streamed", fx.name, db.Label(), q, opt)
					}
					if got.W != want.W || fmt.Sprint(got.Data) != fmt.Sprint(want.Data) {
						t.Fatalf("%s %s %v %+v: streaming result differs\n got  %d rows %v\n want %d rows %v",
							fx.name, db.Label(), q, opt, got.Len(), got.Data, want.Len(), want.Data)
					}
				}
			}
		}
	}
}

// streamGen builds a generated data set large enough that early termination
// and memory bounds are measurable, loaded into all schemes.
func streamGen(t *testing.T) (*datagen.Dataset, Catalog, []Database) {
	t.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Triples: 20_000, Properties: 40, Interesting: 28, Seed: 7,
	})
	if err != nil {
		t.Fatalf("datagen: %v", err)
	}
	cat := generatedCatalog(t, ds)
	return ds, cat, allDatabases(t, ds.Graph, cat)
}

// TestStreamingEarlyTermination asserts a LIMIT-n plan pulls O(n) rows'
// worth of scan batches instead of draining the source: the close signal
// propagates from Limit through the pipeline into the physical scan.
func TestStreamingEarlyTermination(t *testing.T) {
	ds, _, dbs := streamGen(t)
	access := &Access{Pattern: Pat(V("s"), C(ds.Vocab.Type), V("o"))}
	limited := &Limit{In: access, N: 5}
	const batch = 16
	for _, db := range dbs {
		src := db.(PhysicalSource)
		full, _, ftr, err := ExecutePlan(src, access, ExecOptions{Streaming: true, BatchRows: batch})
		if err != nil {
			t.Fatalf("%s: full scan: %v", db.Label(), err)
		}
		if full.Len() <= 10*5 {
			t.Fatalf("%s: fixture too small for the property (%d type rows)", db.Label(), full.Len())
		}
		lim, _, ltr, err := ExecutePlan(src, limited, ExecOptions{Streaming: true, BatchRows: batch})
		if err != nil {
			t.Fatalf("%s: limited scan: %v", db.Label(), err)
		}
		if lim.Len() != 5 {
			t.Fatalf("%s: LIMIT 5 returned %d rows", db.Label(), lim.Len())
		}
		if fmt.Sprint(lim.Data) != fmt.Sprint(full.Data[:5*full.W]) {
			t.Fatalf("%s: LIMIT prefix differs from the full scan's first rows", db.Label())
		}
		// O(n) batches, not O(input): the SPO-clustered triple stores scan
		// the whole table with a residual filter (the paper's structural
		// point against that clustering), so their batches carry only a few
		// matching rows — still a constant number of batches for five rows,
		// against ~1250 for the full drain.
		if ltr.SourceBatches*50 >= ftr.SourceBatches {
			t.Errorf("%s: LIMIT 5 pulled %d source batches, full scan %d — no early termination",
				db.Label(), ltr.SourceBatches, ftr.SourceBatches)
		}
		// The vertical schemes deliver only matching rows, so five rows is
		// exactly one batch.
		switch db.(type) {
		case *RowVert, *ColVert:
			if ltr.SourceBatches != 1 {
				t.Errorf("%s: LIMIT 5 with batch %d pulled %d source batches, want 1",
					db.Label(), batch, ltr.SourceBatches)
			}
		}
	}
}

// TestStreamingTopNHeapCompares pins the bounded-heap cost model: a TopN
// with limit k over n input rows charges n·ceil(log2 k) comparisons and is
// marked Heap in the trace, while the materializing executor's full sort
// charges n·ceil(log2 n).
func TestStreamingTopNHeapCompares(t *testing.T) {
	cf := newCrafted(t)
	ord := DictValues{Dict: cf.g.Dict}
	access := &Access{Pattern: Pat(V("s"), C(cf.cat.Consts.Type), V("o"))}
	for _, db := range allDatabases(t, cf.g, cf.cat) {
		src := db.(PhysicalSource)
		for _, k := range []int{1, 2, 3} {
			topn := &TopN{In: access, Keys: []SortKey{{Col: "o"}, {Col: "s"}}, Limit: k, Ord: ord}
			want, _, mtr, err := ExecutePlan(src, topn, ExecOptions{})
			if err != nil {
				t.Fatalf("%s: materializing TopN: %v", db.Label(), err)
			}
			got, _, str, err := ExecutePlan(src, topn, ExecOptions{Streaming: true, BatchRows: 3})
			if err != nil {
				t.Fatalf("%s: streaming TopN: %v", db.Label(), err)
			}
			if fmt.Sprint(got.Data) != fmt.Sprint(want.Data) {
				t.Fatalf("%s: TopN limit %d: streaming %v, materializing %v", db.Label(), k, got.Data, want.Data)
			}
			if len(mtr.TopNs) != 1 || len(str.TopNs) != 1 {
				t.Fatalf("%s: TopN stats: materializing %d, streaming %d", db.Label(), len(mtr.TopNs), len(str.TopNs))
			}
			m, s := mtr.TopNs[0], str.TopNs[0]
			if m.Heap {
				t.Errorf("%s: materializing TopN marked Heap", db.Label())
			}
			if !s.Heap {
				t.Errorf("%s: streaming TopN limit %d not marked Heap", db.Label(), k)
			}
			if s.Input != m.Input {
				t.Errorf("%s: TopN input rows: streaming %d, materializing %d", db.Label(), s.Input, m.Input)
			}
			n := int64(s.Input)
			if wantCmp := n * ceilLog2(k); s.Compares != wantCmp {
				t.Errorf("%s: heap TopN(n=%d, k=%d) charged %d compares, want n·ceil(log2 k) = %d",
					db.Label(), n, k, s.Compares, wantCmp)
			}
			if wantCmp := sortCompares(s.Input); m.Compares != wantCmp {
				t.Errorf("%s: full-sort TopN(n=%d) charged %d compares, want %d",
					db.Label(), n, m.Compares, wantCmp)
			}
		}
		// Plain ORDER BY (limit < 0) cannot bound its heap: the streaming
		// executor falls back to a full sort and says so in the trace.
		all := &TopN{In: access, Keys: []SortKey{{Col: "o"}, {Col: "s"}}, Limit: -1, Ord: ord}
		_, _, str, err := ExecutePlan(src, all, ExecOptions{Streaming: true})
		if err != nil {
			t.Fatalf("%s: streaming ORDER BY: %v", db.Label(), err)
		}
		if len(str.TopNs) != 1 || str.TopNs[0].Heap {
			t.Errorf("%s: unbounded ORDER BY should not use the heap: %+v", db.Label(), str.TopNs)
		}
	}
}

// TestStreamingPeakMemoryBounded asserts the headline memory claim: a
// LIMIT-10 plan's tracked peak bytes under the streaming executor are at
// least 10× below the materializing executor's, which holds every
// intermediate live.
func TestStreamingPeakMemoryBounded(t *testing.T) {
	_, _, dbs := streamGen(t)
	plan := &Limit{In: &Access{Pattern: Pat(V("s"), V("p"), V("o"))}, N: 10}
	for _, db := range dbs {
		src := db.(PhysicalSource)
		want, _, mtr, err := ExecutePlan(src, plan, ExecOptions{})
		if err != nil {
			t.Fatalf("%s: materializing: %v", db.Label(), err)
		}
		got, _, str, err := ExecutePlan(src, plan, ExecOptions{Streaming: true, BatchRows: 64})
		if err != nil {
			t.Fatalf("%s: streaming: %v", db.Label(), err)
		}
		if fmt.Sprint(got.Data) != fmt.Sprint(want.Data) {
			t.Fatalf("%s: LIMIT 10 results differ between modes", db.Label())
		}
		if str.PeakBytes <= 0 || mtr.PeakBytes <= 0 {
			t.Fatalf("%s: missing peak-memory accounting: streaming %d, materializing %d",
				db.Label(), str.PeakBytes, mtr.PeakBytes)
		}
		if str.PeakBytes*10 > mtr.PeakBytes {
			t.Errorf("%s: streaming peak %d bytes, materializing %d — want ≥10× reduction",
				db.Label(), str.PeakBytes, mtr.PeakBytes)
		}
	}
}

// TestStreamingWorkerChargeDeterminism pins satellite (2): with the worker
// pool on and the clock in overlapped mode, a fully drained streaming query
// charges the same simulated CPU and I/O on every run, regardless of how
// the fan-out's goroutines interleave.
func TestStreamingWorkerChargeDeterminism(t *testing.T) {
	ds, cat, _ := streamGen(t)
	store := simio.NewStore(simio.Config{Machine: simio.MachineB(), PoolBytes: 1 << 30})
	db, err := LoadRowVert(rowstore.NewEngine(store), ds.Graph, cat)
	if err != nil {
		t.Fatalf("LoadRowVert: %v", err)
	}
	store.Clock().SetOverlapped(true)
	opt := ExecOptions{Streaming: true, Workers: 4}
	q := Query{ID: Q2} // unbound-property fan-out over every table
	run := func() (user, io int64) {
		u0, i0 := store.Clock().User(), store.Clock().IO()
		if _, err := ExecuteOpts(db, q, opt); err != nil {
			t.Fatalf("q2: %v", err)
		}
		return int64(store.Clock().User() - u0), int64(store.Clock().IO() - i0)
	}
	run() // warm the buffer pool so repeated runs are hot and comparable
	u1, io1 := run()
	for i := 0; i < 3; i++ {
		u, io := run()
		if u != u1 || io != io1 {
			t.Fatalf("run %d charged (cpu %d, io %d), first hot run (cpu %d, io %d) — nondeterministic worker accounting",
				i+2, u, io, u1, io1)
		}
	}
	if !store.Clock().Overlapped() {
		t.Fatal("clock lost its overlapped mode")
	}
}

// TestStreamingContextCancel asserts a cancelled context aborts a streaming
// plan at a batch boundary with ctx.Err.
func TestStreamingContextCancel(t *testing.T) {
	cf := newCrafted(t)
	dbs := allDatabases(t, cf.g, cf.cat)
	src := dbs[0].(PhysicalSource)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, err := PlanFor(Query{ID: Q2}, cf.cat.Consts)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ExecutePlanCtx(ctx, src, p.Root, ExecOptions{Streaming: true}); err == nil {
		t.Fatal("cancelled streaming plan returned no error")
	} else if ctx.Err() == nil || err.Error() == "" {
		t.Fatalf("unexpected error: %v", err)
	}
}
