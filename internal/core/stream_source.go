package core

import (
	"fmt"

	"blackswan/internal/colstore"
	"blackswan/internal/rdf"
	"blackswan/internal/rel"
	"blackswan/internal/rowstore"
)

// This file implements StreamSource for the four storage schemes: each
// scheme's materializing ScanProp/ScanTriples is re-expressed as a pull
// iterator that delivers the same rows in the same order with the same
// access-path charges, paid batch by batch instead of up front — so a
// consumer that terminates early (LIMIT, TopN, an exhausted join build)
// saves the simulated CPU and I/O of the unread tail.

// rowScanIter adapts the row engine's ScanCursor to the executor's RelIter,
// optionally projecting the tuple down to the pattern's (s, o) columns
// (free, as rel.Project is for the materializing path).
type rowScanIter struct {
	cur  *rowstore.ScanCursor
	proj []int
}

func (it *rowScanIter) Next() (*rel.Rel, error) {
	b := it.cur.Next()
	if b == nil {
		return nil, nil
	}
	if it.proj != nil {
		b = b.Project(it.proj...)
	}
	return b, nil
}

// Close implements RelIter: an abandoned cursor holds no resources and
// simply stops charging.
func (it *rowScanIter) Close() {}

// colScanIter adapts the column engine's ColScan to the executor's RelIter.
type colScanIter struct {
	s *colstore.ColScan
}

func (it *colScanIter) Next() (*rel.Rel, error) { return it.s.Next(), nil }
func (it *colScanIter) Close()                  {}

// chunkRelIter is the materialize-then-chunk fallback for scheme paths the
// streaming executor never exercises (Partitioned schemes answer unbound
// properties through the per-property fan-out, not ScanTriples).
type chunkRelIter struct {
	rel   *rel.Rel
	batch int
	cur   int
}

func (c *chunkRelIter) Next() (*rel.Rel, error) {
	n := c.rel.Len()
	if c.cur >= n {
		return nil, nil
	}
	hi := c.cur + c.batch
	if hi > n {
		hi = n
	}
	out := &rel.Rel{W: c.rel.W, Data: c.rel.Data[c.cur*c.rel.W : hi*c.rel.W]}
	c.cur = hi
	return out, nil
}

func (c *chunkRelIter) Close() {}

// ---- RowTriple ----

// StreamProp implements StreamSource: the pull form of ScanProp — the same
// indexed range of the triples table, projected to (s, o) per batch.
func (d *RowTriple) StreamProp(p, s, o rdf.ID, _ ScanCols, batchRows int) (RelIter, error) {
	bound := map[int]uint64{colP: uint64(p)}
	if s != rdf.NoID {
		bound[colS] = uint64(s)
	}
	if o != rdf.NoID {
		bound[colO] = uint64(o)
	}
	cur := d.eng.ScanEqStream(d.triples, bound, batchRows)
	return &rowScanIter{cur: cur, proj: []int{colS, colO}}, nil
}

// StreamTriples implements StreamSource: the pull form of ScanTriples.
func (d *RowTriple) StreamTriples(s, o rdf.ID, _ ScanCols, batchRows int) RelIter {
	bound := map[int]uint64{}
	if s != rdf.NoID {
		bound[colS] = uint64(s)
	}
	if o != rdf.NoID {
		bound[colO] = uint64(o)
	}
	return &rowScanIter{cur: d.eng.ScanEqStream(d.triples, bound, batchRows)}
}

// ---- RowVert ----

// StreamProp implements StreamSource: a pull cursor over one property
// table (clustered SO for subject bounds, the OS index for object bounds —
// pickIndex decides, as in the materializing scan).
func (d *RowVert) StreamProp(p, s, o rdf.ID, _ ScanCols, batchRows int) (RelIter, error) {
	t, ok := d.tables[p]
	if !ok {
		return nil, fmt.Errorf("core: property %d not loaded in %s", p, d.Label())
	}
	bound := map[int]uint64{}
	if s != rdf.NoID {
		bound[vcS] = uint64(s)
	}
	if o != rdf.NoID {
		bound[vcO] = uint64(o)
	}
	return &rowScanIter{cur: d.eng.ScanEqStream(t, bound, batchRows)}, nil
}

// StreamTriples implements StreamSource. The streaming executor answers
// unbound properties on partitioned schemes through the per-property
// fan-out, so this is only the interface-completing fallback.
func (d *RowVert) StreamTriples(s, o rdf.ID, need ScanCols, batchRows int) RelIter {
	return &chunkRelIter{rel: d.ScanTriples(s, o, need), batch: batchRows}
}

// ---- column-store scheme helpers ----

// streamCol builds one output column of a streaming column scan, mirroring
// fetchIfNeeded: an un-needed position emits zeros for free, a bound
// position fills its constant for free, and only a needed unbound position
// fetches — which is the one case that charges a Fetch operator dispatch.
func streamCol(eng *colstore.Engine, c *colstore.Column, bound rdf.ID, needed bool) colstore.StreamCol {
	if !needed {
		return colstore.StreamCol{}
	}
	if bound != rdf.NoID {
		return colstore.StreamCol{Const: uint64(bound)}
	}
	// One Fetch call per demanded column in the materializing path.
	eng.ChargeNode()
	return colstore.StreamCol{C: c}
}

// ---- ColVert ----

// StreamProp implements StreamSource: the pull form of the vertical table
// scan. A bound subject binary-searches the sorted subject column to a
// position range (SelectEq's sorted path); a bound object scans the full
// table (SelectEq's unsorted path); the per-candidate selection tests and
// the needed fetches then follow the batches.
func (d *ColVert) StreamProp(p, s, o rdf.ID, need ScanCols, batchRows int) (RelIter, error) {
	t, ok := d.tables[p]
	if !ok {
		return nil, fmt.Errorf("core: property %d not loaded in %s", p, d.label)
	}
	sc, oc := t.Cols[0], t.Cols[1]
	lo, hi := 0, t.Rows()
	var conds []colstore.EqCond
	switch {
	case s != rdf.NoID:
		lo, hi = d.eng.SelectRange(sc, uint64(s))
		conds = append(conds, colstore.EqCond{C: sc, V: uint64(s)})
		if o != rdf.NoID {
			// The materializing path's SelectEqAt dispatch.
			d.eng.ChargeNode()
			conds = append(conds, colstore.EqCond{C: oc, V: uint64(o)})
		}
	case o != rdf.NoID:
		// Unsorted-column SelectEq: one dispatch, then a full-range scan.
		d.eng.ChargeNode()
		conds = append(conds, colstore.EqCond{C: oc, V: uint64(o)})
	}
	out := []colstore.StreamCol{
		streamCol(d.eng, sc, s, need.S),
		streamCol(d.eng, oc, o, need.O),
	}
	return &colScanIter{s: d.eng.NewColScan(lo, hi, conds, out, batchRows)}, nil
}

// StreamTriples implements StreamSource; interface-completing fallback, as
// for RowVert.
func (d *ColVert) StreamTriples(s, o rdf.ID, need ScanCols, batchRows int) RelIter {
	return &chunkRelIter{rel: d.ScanTriples(s, o, need), batch: batchRows}
}

// ---- ColTriple ----

// streamSelect reproduces selectPos's access-path charges for a streaming
// scan: the leading bound column either binary-searches its sorted run or
// dispatches a full-range scan; every further bound column is one more
// selection dispatch refining the candidates.
func (d *ColTriple) streamSelect(lead *colstore.Column, leadV uint64, rest ...colstore.EqCond) (int, int, []colstore.EqCond) {
	lo, hi := 0, d.table.Rows()
	if lead.Sorted {
		lo, hi = d.eng.SelectRange(lead, leadV)
	} else {
		d.eng.ChargeNode()
	}
	conds := append([]colstore.EqCond{{C: lead, V: leadV}}, rest...)
	for range rest {
		// One SelectEqAt dispatch per refinement in the materializing path.
		d.eng.ChargeNode()
	}
	return lo, hi, conds
}

// StreamProp implements StreamSource: the pull form of ScanProp on the
// clustered triples table, selecting on p (then s, then o) and fetching
// only the demanded columns.
func (d *ColTriple) StreamProp(p, s, o rdf.ID, need ScanCols, batchRows int) (RelIter, error) {
	var rest []colstore.EqCond
	if s != rdf.NoID {
		rest = append(rest, colstore.EqCond{C: d.colS(), V: uint64(s)})
	}
	if o != rdf.NoID {
		rest = append(rest, colstore.EqCond{C: d.colO(), V: uint64(o)})
	}
	lo, hi, conds := d.streamSelect(d.colP(), uint64(p), rest...)
	out := []colstore.StreamCol{
		streamCol(d.eng, d.colS(), s, need.S),
		streamCol(d.eng, d.colO(), o, need.O),
	}
	return &colScanIter{s: d.eng.NewColScan(lo, hi, conds, out, batchRows)}, nil
}

// StreamTriples implements StreamSource: the pull form of ScanTriples —
// width-3 batches with only the demanded columns fetched.
func (d *ColTriple) StreamTriples(s, o rdf.ID, need ScanCols, batchRows int) RelIter {
	lo, hi := 0, d.table.Rows()
	var conds []colstore.EqCond
	switch {
	case s != rdf.NoID:
		var rest []colstore.EqCond
		if o != rdf.NoID {
			rest = append(rest, colstore.EqCond{C: d.colO(), V: uint64(o)})
		}
		lo, hi, conds = d.streamSelect(d.colS(), uint64(s), rest...)
	case o != rdf.NoID:
		lo, hi, conds = d.streamSelect(d.colO(), uint64(o))
	}
	out := []colstore.StreamCol{
		streamCol(d.eng, d.colS(), s, need.S),
		streamCol(d.eng, d.colP(), rdf.NoID, need.P),
		streamCol(d.eng, d.colO(), o, need.O),
	}
	return &colScanIter{s: d.eng.NewColScan(lo, hi, conds, out, batchRows)}
}
