package datagen

import (
	"fmt"
	"math/rand"

	"blackswan/internal/rdf"
)

// Well-known IRIs of the synthetic vocabulary. The names mirror the Barton
// terms that the benchmark queries reference.
const (
	TypeIRI        = "barton/type"
	RecordsIRI     = "barton/records"
	OriginIRI      = "barton/origin"
	LanguageIRI    = "barton/language"
	PointIRI       = "barton/Point"
	EncodingIRI    = "barton/Encoding"
	PointInTimeIRI = "barton/pointInTime"
	TextIRI        = "barton/Text"
	DateIRI        = "barton/Date"
	DLCIRI         = "barton/info:marcorg/DLC"
	FrenchIRI      = "barton/language/iso639-2b/fre"
	ConferencesIRI = "barton/conferences"
	EndLiteral     = "end"
)

// Numeric object range of the <pointInTime> property: years, as the Barton
// catalog's date fields carry. These literals are the data set's numeric
// population — what range filters and numeric ORDER BY exercise.
const (
	PointInTimeMin = 1801
	PointInTimeMax = 2000
)

// Vocab holds the dictionary identifiers of the terms the benchmark queries
// bind as constants.
type Vocab struct {
	// Properties. PointInTime is the numeric-valued property (year
	// literals) the SPARQL-ward range filters draw on.
	Type, Records, Origin, Language, Point, Encoding, PointInTime rdf.ID
	// Objects (and the q8 subject Conferences).
	Text, Date, DLC, French, End, Conferences rdf.ID
}

// Config parameterizes generation.
type Config struct {
	// Triples is the target statement count before deduplication.
	Triples int
	// Properties is the number of distinct properties; the paper's data
	// set has 222.
	Properties int
	// Interesting is the size of the "interesting properties" list the
	// Longwell administrator selects; the paper uses 28.
	Interesting int
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultConfig mirrors the Barton shape at 1:50 scale.
func DefaultConfig() Config {
	return Config{Triples: 1_000_000, Properties: 222, Interesting: 28, Seed: 42}
}

// Dataset is a generated benchmark database plus the metadata the harness
// needs: the vocabulary, the properties ranked by frequency, and the
// interesting-property list.
type Dataset struct {
	Graph *rdf.Graph
	Vocab Vocab
	// PropsByRank lists all property ids, most frequent first.
	PropsByRank []rdf.ID
	// Interesting is the 28-property selection: the most frequent
	// properties, always including the specials the queries bind.
	Interesting []rdf.ID
	// Config echoes the generation parameters.
	Config Config
}

// numSubjects derives the subject population: the Barton set averages ≈4
// triples per subject (50.3M triples / 12.3M subjects).
func (c Config) numSubjects() int {
	n := c.Triples / 4
	if n < 16 {
		n = 16
	}
	return n
}

// Generate builds a data set according to cfg. The result is normalized
// (sorted, duplicate-free) and validated.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Triples < 1000 {
		return nil, fmt.Errorf("datagen: need at least 1000 triples, got %d", cfg.Triples)
	}
	if cfg.Properties < 10 {
		return nil, fmt.Errorf("datagen: need at least 10 properties, got %d", cfg.Properties)
	}
	if cfg.Interesting < 8 || cfg.Interesting > cfg.Properties {
		return nil, fmt.Errorf("datagen: interesting=%d out of range", cfg.Interesting)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := rdf.NewGraph()
	d := g.Dict

	v := Vocab{
		Type:        d.InternIRI(TypeIRI),
		Records:     d.InternIRI(RecordsIRI),
		Origin:      d.InternIRI(OriginIRI),
		Language:    d.InternIRI(LanguageIRI),
		Point:       d.InternIRI(PointIRI),
		Encoding:    d.InternIRI(EncodingIRI),
		PointInTime: d.InternIRI(PointInTimeIRI),
		Text:        d.InternIRI(TextIRI),
		Date:        d.InternIRI(DateIRI),
		DLC:         d.InternIRI(DLCIRI),
		French:      d.InternIRI(FrenchIRI),
		End:         d.InternLiteral(EndLiteral),
		Conferences: d.InternIRI(ConferencesIRI),
	}

	// Subjects.
	nSubj := cfg.numSubjects()
	subjects := make([]rdf.ID, nSubj)
	for i := range subjects {
		subjects[i] = d.InternIRI(fmt.Sprintf("barton/item/%d", i))
	}
	randSubj := func() rdf.ID { return subjects[rng.Intn(nSubj)] }

	// Type objects: ~30 classes, Zipf-distributed with <Date> first and
	// <Text> second (in Barton, Date holds 33% of type triples and the
	// next classes are also type objects).
	typeObjects := []rdf.ID{v.Date, v.Text}
	for i := 0; i < 28; i++ {
		typeObjects = append(typeObjects, d.InternIRI(fmt.Sprintf("barton/class/%d", i)))
	}
	typeZipf := newZipf(rng, len(typeObjects), 1.4)

	// Language objects: 40 languages, French second-ranked so q4 is
	// selective but non-empty.
	langObjects := make([]rdf.ID, 0, 40)
	langObjects = append(langObjects, d.InternIRI("barton/language/iso639-2b/eng"), v.French)
	for i := 0; i < 38; i++ {
		langObjects = append(langObjects, d.InternIRI(fmt.Sprintf("barton/language/%d", i)))
	}
	langZipf := newZipf(rng, len(langObjects), 1.3)

	// Origin objects: DLC plus 19 other organizations.
	originObjects := []rdf.ID{v.DLC}
	for i := 0; i < 19; i++ {
		originObjects = append(originObjects, d.InternIRI(fmt.Sprintf("barton/org/%d", i)))
	}
	originZipf := newZipf(rng, len(originObjects), 1.2)

	// Encoding and Point literal pools.
	encodings := make([]rdf.ID, 0, 10)
	for i := 0; i < 10; i++ {
		encodings = append(encodings, d.InternLiteral(fmt.Sprintf("encoding-%d", i)))
	}
	pointStart := d.InternLiteral("start")

	// Property roster: specials first (they are among the most frequent in
	// Barton), then generic properties.
	props := []rdf.ID{v.Type, v.Records, v.Origin, v.Language, v.Point, v.Encoding, v.PointInTime}
	for len(props) < cfg.Properties {
		props = append(props, d.InternIRI(fmt.Sprintf("barton/property/%d", len(props))))
	}

	// Year literals for <pointInTime>: a Zipfian pull toward the recent end
	// of the range, so range filters see a skewed numeric distribution.
	years := make([]rdf.ID, 0, PointInTimeMax-PointInTimeMin+1)
	for y := PointInTimeMax; y >= PointInTimeMin; y-- {
		years = append(years, d.InternLiteral(fmt.Sprintf("%d", y)))
	}
	yearZipf := newZipf(rng, len(years), 1.05)

	// Per-property target counts, calibrated to the Barton proportions:
	//
	//   - <type> receives one triple per subject (≈25% of the total, as in
	//     Barton where <type> holds 12.3M of 50.2M triples);
	//   - the other 27 *interesting* properties carry ≈12%, so the whole
	//     interesting-28 set covers ≈37% — matching the original study,
	//     where C-Store's 28-property database was 270MB of the 1253MB
	//     total (the interesting list is the admin's selection, NOT the
	//     most frequent properties);
	//   - ≈20 "giant" generic properties (catalog fields queried rarely)
	//     carry ≈55%, which is what makes the top 13% of properties cover
	//     the vast bulk of all triples (Figure 1's Zipfian head);
	//   - the remaining long tail shares ≈8%, most holding only a handful
	//     of rows ("many with just a small number of rows").
	counts := make([]int, len(props))
	counts[0] = nSubj
	remaining := cfg.Triples - nSubj
	tier1 := props[1:cfg.Interesting]
	nGiants := 20
	if max := len(props) - cfg.Interesting; nGiants > max {
		nGiants = max
	}
	giants := props[cfg.Interesting : cfg.Interesting+nGiants]
	tail := props[cfg.Interesting+nGiants:]

	t1Budget := int(float64(remaining) * 0.16)
	giantBudget := int(float64(remaining) * 0.73)
	tailBudget := remaining - t1Budget - giantBudget
	if len(tail) == 0 {
		giantBudget += tailBudget
		tailBudget = 0
	}
	z1 := newZipf(rng, len(tier1), 1.05)
	for i := range tier1 {
		counts[1+i] = int(float64(t1Budget) * z1.Share(i))
	}
	if len(giants) > 0 {
		zg := newZipf(rng, len(giants), 1.1)
		for i := range giants {
			counts[cfg.Interesting+i] = int(float64(giantBudget) * zg.Share(i))
		}
	}
	if len(tail) > 0 {
		z2 := newZipf(rng, len(tail), 1.3)
		for i := range tail {
			// Every property exists in the data set (Barton has exactly
			// 222 distinct ones), so the floor is one triple.
			n := int(float64(tailBudget) * z2.Share(i))
			if n < 1 {
				n = 1
			}
			counts[cfg.Interesting+nGiants+i] = n
		}
	}

	// Generic-property object pools: a property with n rows draws from
	// ~max(4, n/3) distinct literals, giving the object population its
	// long tail; 30% of generic objects are subject URIs, which (with
	// <records>) produces the large subject/object overlap of Table 1.
	genericObject := func(propIdx, n int) rdf.ID {
		if rng.Float64() < 0.30 {
			return randSubj()
		}
		pool := n / 3
		if pool < 4 {
			pool = 4
		}
		return d.InternLiteral(fmt.Sprintf("val/%d/%d", propIdx, rng.Intn(pool)))
	}

	for pi, p := range props {
		n := counts[pi]
		for i := 0; i < n; i++ {
			s := randSubj()
			var o rdf.ID
			switch p {
			case v.Type:
				s = subjects[i%nSubj] // every subject typed exactly once
				o = typeObjects[typeZipf.Draw()]
			case v.Records:
				o = randSubj()
			case v.Origin:
				o = originObjects[originZipf.Draw()]
			case v.Language:
				o = langObjects[langZipf.Draw()]
			case v.Point:
				if rng.Intn(2) == 0 {
					o = v.End
				} else {
					o = pointStart
				}
			case v.Encoding:
				o = encodings[rng.Intn(len(encodings))]
			case v.PointInTime:
				o = years[yearZipf.Draw()]
			default:
				o = genericObject(pi, n)
			}
			g.AddIDs(s, p, o)
		}
	}

	// The q8 subject: <conferences> shares objects with ordinary subjects.
	// Reuse objects that other triples already have, under a tier-1
	// generic property, so the join on objects has matches.
	q8Prop := tier1[len(tier1)/2]
	for i := 0; i < 12 && i < len(g.Triples); i++ {
		t := g.Triples[rng.Intn(len(g.Triples))]
		g.AddIDs(v.Conferences, q8Prop, t.O)
	}

	g.Normalize()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("datagen: generated invalid graph: %w", err)
	}

	ds := &Dataset{Graph: g, Vocab: v, Config: cfg}
	// The interesting list is the administrator's selection: the special
	// properties the queries bind plus the rest of tier 1 — by
	// construction the first cfg.Interesting entries of the roster.
	ds.Interesting = append([]rdf.ID(nil), props[:cfg.Interesting]...)
	ds.rankProperties()
	return ds, nil
}

// rankProperties recomputes PropsByRank from actual post-dedup frequencies.
func (ds *Dataset) rankProperties() {
	st := rdf.ComputeStats(ds.Graph)
	ds.PropsByRank = rdf.TopK(st.PropFreq, len(st.PropFreq))
}

// Stats computes the Table 1 statistics of the generated data.
func (ds *Dataset) Stats() *rdf.Stats { return rdf.ComputeStats(ds.Graph) }
