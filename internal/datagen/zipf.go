// Package datagen synthesizes Barton-Libraries-like RDF data sets.
//
// The paper's benchmark uses the real Barton dump (50,255,599 triples, 222
// distinct properties, Table 1). That dump is not redistributable here, so
// datagen reproduces its *distributional shape* instead, which is what every
// experiment in the paper depends on:
//
//   - a highly Zipfian property distribution — the top 13% of properties
//     account for 99% of all triples, with <type> alone near 24.5%;
//   - a long tail of properties "with just a small number of rows";
//   - near-uniform subjects (≈4 triples per subject);
//   - a large subject/object overlap (≈78% of subjects also appear as
//     objects) created by the <records> linking property;
//   - the specific vocabulary the benchmark queries select on: <type> with
//     object <Text>, <language> with <fre>, <origin> with <DLC>, <Point>
//     with "end", <Encoding>, and the q8 subject <conferences>.
//
// Generation is fully deterministic for a given Config.
package datagen

import (
	"math"
	"math/rand"
)

// zipf draws ranks in [0, n) with probability proportional to 1/(rank+1)^s,
// via inverse-CDF sampling on precomputed cumulative weights. math/rand's
// own Zipf generator is unbounded in a way that is awkward for exact rank
// counts; this one is tailored to small n and exact determinism.
type zipf struct {
	cum []float64 // cumulative normalized weights
	rng *rand.Rand
}

// newZipf builds a sampler over n ranks with exponent s.
func newZipf(rng *rand.Rand, n int, s float64) *zipf {
	if n < 1 {
		panic("datagen: zipf over zero ranks")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1.0 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[n-1] = 1.0 // guard against rounding
	return &zipf{cum: cum, rng: rng}
}

// Draw returns a rank in [0, len(cum)).
func (z *zipf) Draw() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Share returns the probability mass of rank i.
func (z *zipf) Share(i int) float64 {
	if i == 0 {
		return z.cum[0]
	}
	return z.cum[i] - z.cum[i-1]
}
