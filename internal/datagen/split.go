package datagen

import (
	"fmt"
	"math/rand"

	"blackswan/internal/rdf"
)

// SplitProperties implements the paper's Section 4.4 scale-up transform:
// keep the triple population fixed but increase the number of distinct
// properties by "splitting in each round an arbitrary number of properties
// into n sub-properties", reassigning each affected triple to one of the
// sub-properties uniformly at random.
//
// The special properties bound as constants by the benchmark queries
// (<type>, <records>, <origin>, <language>, <Point>, <Encoding>) are never
// split, so all queries remain well-defined on the transformed data. The
// receiver is not modified; a new Dataset sharing the dictionary is
// returned.
func SplitProperties(ds *Dataset, targetProps int, seed int64) (*Dataset, error) {
	st := ds.Stats()
	cur := st.DistinctProperties
	if targetProps < cur {
		return nil, fmt.Errorf("datagen: target %d below current %d properties", targetProps, cur)
	}
	rng := rand.New(rand.NewSource(seed))

	out := &Dataset{
		Graph:       &rdf.Graph{Dict: ds.Graph.Dict, Triples: append([]rdf.Triple(nil), ds.Graph.Triples...)},
		Vocab:       ds.Vocab,
		Interesting: append([]rdf.ID(nil), ds.Interesting...),
		Config:      ds.Config,
	}
	if targetProps == cur {
		out.rankProperties()
		return out, nil
	}

	protected := map[rdf.ID]bool{
		ds.Vocab.Type: true, ds.Vocab.Records: true, ds.Vocab.Origin: true,
		ds.Vocab.Language: true, ds.Vocab.Point: true, ds.Vocab.Encoding: true,
	}

	// Rebuild frequency map as splits proceed.
	freq := make(map[rdf.ID]int, len(st.PropFreq))
	for p, n := range st.PropFreq {
		freq[p] = n
	}

	// Index triples by property for in-place reassignment.
	byProp := make(map[rdf.ID][]int)
	for i, t := range out.Graph.Triples {
		byProp[t.P] = append(byProp[t.P], i)
	}

	splitSeq := 0
	for cur < targetProps {
		// Pick the splittable property with the most triples: splitting
		// dense properties first matches the paper's intent (the
		// redistribution stays uniform and sub-properties stay non-empty).
		var pick rdf.ID
		best := -1
		for p, n := range freq {
			if protected[p] || n < 2 {
				continue
			}
			if n > best || (n == best && p < pick) {
				best, pick = n, p
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("datagen: no splittable property left at %d properties", cur)
		}
		// Split into n sub-properties, n ∈ 2..10 (the paper's n=1..9 new
		// parts), capped by the remaining deficit and the row count.
		parts := 2 + rng.Intn(9)
		if max := targetProps - cur + 1; parts > max {
			parts = max
		}
		if parts > best {
			parts = best
		}
		subs := make([]rdf.ID, parts)
		subs[0] = pick // the original id remains as the first sub-property
		base := out.Graph.Dict.Term(pick).Value
		for i := 1; i < parts; i++ {
			splitSeq++
			subs[i] = out.Graph.Dict.InternIRI(fmt.Sprintf("%s/split/%d", base, splitSeq))
		}
		idxs := byProp[pick]
		newIdx := make(map[rdf.ID][]int, parts)
		for k, i := range idxs {
			p := subs[rng.Intn(parts)]
			if k == 0 {
				// The original id must keep at least one triple so catalog
				// references (e.g. a split interesting property) stay valid.
				p = pick
			}
			out.Graph.Triples[i].P = p
			newIdx[p] = append(newIdx[p], i)
		}
		delete(byProp, pick)
		delete(freq, pick)
		for p, l := range newIdx {
			byProp[p] = l
			freq[p] = len(l)
		}
		// Some sub-properties may have drawn zero triples; only count the
		// non-empty ones as distinct properties of the data set.
		cur += len(newIdx) - 1
	}

	out.Graph.Normalize()
	out.rankProperties()
	return out, nil
}
