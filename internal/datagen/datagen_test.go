package datagen

import (
	"math/rand"
	"testing"

	"blackswan/internal/rdf"
)

func testConfig() Config {
	return Config{Triples: 60_000, Properties: 222, Interesting: 28, Seed: 7}
}

func mustGenerate(t *testing.T, cfg Config) *Dataset {
	t.Helper()
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return ds
}

func TestGenerateValidates(t *testing.T) {
	ds := mustGenerate(t, testConfig())
	if err := ds.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if !rdf.SPO.IsSorted(ds.Graph.Triples) {
		t.Fatal("graph not normalized")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGenerate(t, testConfig())
	b := mustGenerate(t, testConfig())
	if a.Graph.Len() != b.Graph.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Graph.Len(), b.Graph.Len())
	}
	for i := range a.Graph.Triples {
		if a.Graph.Triples[i] != b.Graph.Triples[i] {
			t.Fatalf("triple %d differs", i)
		}
	}
	c := mustGenerate(t, Config{Triples: 60_000, Properties: 222, Interesting: 28, Seed: 8})
	if c.Graph.Len() == a.Graph.Len() {
		same := true
		for i := range c.Graph.Triples {
			if c.Graph.Triples[i] != a.Graph.Triples[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical data")
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{Triples: 10, Properties: 222, Interesting: 28},
		{Triples: 60000, Properties: 5, Interesting: 4},
		{Triples: 60000, Properties: 222, Interesting: 4},
		{Triples: 60000, Properties: 222, Interesting: 500},
	}
	for _, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	ds := mustGenerate(t, testConfig())
	st := ds.Stats()

	if st.DistinctProperties < 200 || st.DistinctProperties > 222 {
		t.Fatalf("DistinctProperties = %d, want ≈222", st.DistinctProperties)
	}
	// Subjects ≈ triples/4 (Barton: 12.3M of 50.2M).
	subjRatio := float64(st.DistinctSubjects) / float64(st.Triples)
	if subjRatio < 0.15 || subjRatio > 0.35 {
		t.Fatalf("subject ratio = %.2f, want ≈0.25", subjRatio)
	}
	// Large subject/object overlap (Barton: 9.65M of 12.3M subjects ≈ 78%).
	overlap := float64(st.SubjectObjectOverlap) / float64(st.DistinctSubjects)
	if overlap < 0.5 {
		t.Fatalf("subject/object overlap = %.2f, want > 0.5", overlap)
	}
}

func TestPropertySkewMatchesFigure1(t *testing.T) {
	ds := mustGenerate(t, testConfig())
	st := ds.Stats()

	// <type> is the most frequent property at ≈24.5% of all triples.
	typeShare := float64(st.PropFreq[ds.Vocab.Type]) / float64(st.Triples)
	if typeShare < 0.15 || typeShare > 0.35 {
		t.Fatalf("<type> share = %.2f, want ≈0.25", typeShare)
	}
	if ds.PropsByRank[0] != ds.Vocab.Type {
		t.Fatal("<type> is not the top-ranked property")
	}

	// Top 13% of properties account for the vast bulk of triples (99% in
	// Barton; our synthetic head is slightly flatter).
	k := st.DistinctProperties * 13 / 100
	var covered int
	for _, p := range ds.PropsByRank[:k] {
		covered += st.PropFreq[p]
	}
	share := float64(covered) / float64(st.Triples)
	if share < 0.80 {
		t.Fatalf("top 13%% of properties cover %.3f of triples, want ≥0.80", share)
	}

	// The interesting-28 selection covers roughly a third of the data (in
	// the original study C-Store's 28-property load was 270MB of 1253MB),
	// NOT the whole head of the distribution.
	var interesting int
	for _, p := range ds.Interesting {
		interesting += st.PropFreq[p]
	}
	is := float64(interesting) / float64(st.Triples)
	if is < 0.20 || is > 0.60 {
		t.Fatalf("interesting-28 covers %.2f of triples, want ≈0.37", is)
	}

	// Long tail: many properties with very few rows.
	tiny := 0
	for _, n := range st.PropFreq {
		if n < 10 {
			tiny++
		}
	}
	if tiny < st.DistinctProperties/4 {
		t.Fatalf("only %d of %d properties have <10 rows", tiny, st.DistinctProperties)
	}

	// Subjects are near-uniform: the most frequent subject is tiny
	// relative to the total (Barton: 3794 of 50M).
	top := rdf.TopK(st.SubjFreq, 1)
	if share := float64(st.SubjFreq[top[0]]) / float64(st.Triples); share > 0.01 {
		t.Fatalf("most frequent subject holds %.4f of triples", share)
	}
}

func TestQueryConstantsPresent(t *testing.T) {
	ds := mustGenerate(t, testConfig())
	st := ds.Stats()
	v := ds.Vocab

	for name, p := range map[string]rdf.ID{
		"type": v.Type, "records": v.Records, "origin": v.Origin,
		"language": v.Language, "Point": v.Point, "Encoding": v.Encoding,
	} {
		if st.PropFreq[p] == 0 {
			t.Errorf("property %s has no triples", name)
		}
	}
	for name, o := range map[string]rdf.ID{
		"Text": v.Text, "Date": v.Date, "DLC": v.DLC, "fre": v.French, "end": v.End,
	} {
		if st.ObjFreq[o] == 0 {
			t.Errorf("object %s never appears", name)
		}
	}
	// The q8 subject exists and shares objects with other subjects.
	confTriples := 0
	shared := false
	objs := map[rdf.ID]bool{}
	for _, tr := range ds.Graph.Triples {
		if tr.S == v.Conferences {
			confTriples++
			objs[tr.O] = true
		}
	}
	for _, tr := range ds.Graph.Triples {
		if tr.S != v.Conferences && objs[tr.O] {
			shared = true
			break
		}
	}
	if confTriples == 0 {
		t.Fatal("no <conferences> triples")
	}
	if !shared {
		t.Fatal("<conferences> shares no objects — q8 would be empty")
	}
}

func TestInterestingList(t *testing.T) {
	ds := mustGenerate(t, testConfig())
	if len(ds.Interesting) != 28 {
		t.Fatalf("interesting list has %d entries", len(ds.Interesting))
	}
	seen := map[rdf.ID]bool{}
	for _, p := range ds.Interesting {
		if seen[p] {
			t.Fatal("duplicate in interesting list")
		}
		seen[p] = true
	}
	v := ds.Vocab
	for _, p := range []rdf.ID{v.Type, v.Records, v.Origin, v.Language, v.Point, v.Encoding} {
		if !seen[p] {
			t.Fatalf("special property %d missing from interesting list", p)
		}
	}
}

func TestEverySubjectTyped(t *testing.T) {
	ds := mustGenerate(t, testConfig())
	typed := map[rdf.ID]bool{}
	subjects := map[rdf.ID]bool{}
	for _, tr := range ds.Graph.Triples {
		if tr.S == ds.Vocab.Conferences {
			continue
		}
		subjects[tr.S] = true
		if tr.P == ds.Vocab.Type {
			typed[tr.S] = true
		}
	}
	untyped := 0
	for s := range subjects {
		if !typed[s] {
			untyped++
		}
	}
	if frac := float64(untyped) / float64(len(subjects)); frac > 0.01 {
		t.Fatalf("%.2f%% of subjects untyped", 100*frac)
	}
}

func TestSplitPropertiesReachesTarget(t *testing.T) {
	ds := mustGenerate(t, testConfig())
	for _, target := range []int{300, 500, 1000} {
		out, err := SplitProperties(ds, target, 11)
		if err != nil {
			t.Fatalf("SplitProperties(%d): %v", target, err)
		}
		st := out.Stats()
		if st.DistinctProperties != target {
			t.Fatalf("got %d properties, want %d", st.DistinctProperties, target)
		}
		// The triple population is preserved (modulo dedup collisions).
		if delta := ds.Graph.Len() - out.Graph.Len(); delta < 0 || delta > ds.Graph.Len()/100 {
			t.Fatalf("split changed triple count: %d -> %d", ds.Graph.Len(), out.Graph.Len())
		}
	}
}

func TestSplitPreservesSpecials(t *testing.T) {
	ds := mustGenerate(t, testConfig())
	before := ds.Stats()
	out, err := SplitProperties(ds, 800, 13)
	if err != nil {
		t.Fatal(err)
	}
	after := out.Stats()
	v := ds.Vocab
	for name, p := range map[string]rdf.ID{
		"type": v.Type, "records": v.Records, "origin": v.Origin,
		"language": v.Language, "Point": v.Point, "Encoding": v.Encoding,
	} {
		if after.PropFreq[p] != before.PropFreq[p] {
			t.Errorf("special %s changed: %d -> %d", name, before.PropFreq[p], after.PropFreq[p])
		}
	}
}

func TestSplitNoOpAndErrors(t *testing.T) {
	ds := mustGenerate(t, testConfig())
	cur := ds.Stats().DistinctProperties
	same, err := SplitProperties(ds, cur, 3)
	if err != nil {
		t.Fatal(err)
	}
	if same.Stats().DistinctProperties != cur {
		t.Fatal("no-op split changed property count")
	}
	if _, err := SplitProperties(ds, cur-10, 3); err == nil {
		t.Fatal("shrinking target accepted")
	}
}

func TestSplitDoesNotMutateOriginal(t *testing.T) {
	ds := mustGenerate(t, testConfig())
	snapshot := append([]rdf.Triple(nil), ds.Graph.Triples...)
	if _, err := SplitProperties(ds, 600, 5); err != nil {
		t.Fatal(err)
	}
	for i := range snapshot {
		if ds.Graph.Triples[i] != snapshot[i] {
			t.Fatal("SplitProperties mutated its input")
		}
	}
}

func TestZipfSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := newZipf(rng, 100, 1.1)
	counts := make([]int, 100)
	const draws = 200_000
	for i := 0; i < draws; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[60] {
		t.Fatalf("Zipf not decreasing: c0=%d c10=%d c60=%d", counts[0], counts[10], counts[60])
	}
	// Empirical rank-0 share should approximate the analytic share.
	want := z.Share(0)
	got := float64(counts[0]) / draws
	if got < want*0.9 || got > want*1.1 {
		t.Fatalf("rank-0 share %.4f, want ≈%.4f", got, want)
	}
	total := 0.0
	for i := 0; i < 100; i++ {
		total += z.Share(i)
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("shares sum to %f", total)
	}
}

func TestZipfPanicsOnZeroRanks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	newZipf(rand.New(rand.NewSource(1)), 0, 1)
}
