// Command swanbench regenerates every table and figure of the paper's
// evaluation on a synthetic Barton-shaped workload.
//
// Usage:
//
//	swanbench [flags] <experiment>
//
// Experiments:
//
//	table1   data set details
//	fig1     cumulative frequency distributions
//	table2   query-space coverage
//	table4   C-Store repetition on machines A and B (cold/hot, real/user)
//	table5   data read from disk and rows returned per query
//	fig5     I/O read history for q3 and q5
//	table6   full grid, cold runs
//	table7   full grid, hot runs
//	fig6      execution time vs number of aggregated properties
//	fig7      scale-up experiment (property splitting, 222 → 1000)
//	parallel  host-time speedup of the worker-pool execution mode
//	workloads generated random-BGP workload through the query compiler
//	serve     serving-layer throughput/latency benchmark (QPS, p50/p95/p99,
//	          plan-cache hit ratio, cached-vs-cold speedup); -serve-report
//	          writes the JSON report
//	load      bulk-ingest benchmark: sequential loader vs the parallel
//	          pipeline (triples/sec, per-stage breakdown, deterministic
//	          byte-identity and cross-build query equivalence);
//	          -load-report writes the JSON report
//	stream    streaming vs materializing executor: paper queries plus a
//	          generated ORDER BY/LIMIT workload, reporting simulated time,
//	          host time, physical I/O and peak per-query memory;
//	          -stream-report writes the JSON report
//	profile   per-operator EXPLAIN ANALYZE on every scheme and both
//	          executors: estimate-vs-actual rows (q-error), simulated
//	          charges per operator, and the profiling host-overhead ratio;
//	          -profile-report writes the JSON report
//	trace     request-tracing overhead: every scheme and both executors
//	          through the serving layer, traced (100%% sampling) vs
//	          untraced, gated on byte-identical rows and identical
//	          simulated charges; -trace-report writes the JSON report
//	workload-obs  workload-registry overhead: every scheme and both
//	          executors through the serving layer, registry on vs off,
//	          gated on byte-identical rows, identical simulated charges,
//	          per-fingerprint quantiles within the sketch's ε rank bound,
//	          and folded per-operator q-error aggregates;
//	          -workload-obs-report writes the JSON report
//	mutate    live mutation: concurrent INSERT DATA / DELETE DATA writers
//	          and version-tagged readers through the HTTP front-end, the
//	          recorded history checked against snapshot isolation, the
//	          final state byte-compared with a from-scratch rebuild, and a
//	          fault-injection pass proving the checker catches stale
//	          snapshots; -mutate-report writes the JSON report
//	sql       generated SQL for both schemes, with union/join counts
//	gen       write the generated data set as N-Triples to stdout
//	all       every experiment in paper order
//
// Beyond the paper's fixed queries, -bgp '<query>' compiles and runs an
// arbitrary basic-graph-pattern query (see internal/bgp for the syntax) on
// all four storage schemes:
//
//	swanbench -bgp 'SELECT ?s ?t WHERE { ?s <barton/origin> <barton/info:marcorg/DLC> . ?s <barton/records> ?x . ?x <barton/type> ?t }'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"blackswan/internal/bench"
	"blackswan/internal/bgp"
	"blackswan/internal/buildinfo"
	"blackswan/internal/core"
	"blackswan/internal/datagen"
	"blackswan/internal/rdf"
	"blackswan/internal/rel"
)

func main() {
	var (
		triples     = flag.Int("triples", 1_000_000, "number of triples to generate (Barton is 50,255,599)")
		props       = flag.Int("props", 222, "number of distinct properties")
		interesting = flag.Int("interesting", 28, "size of the interesting-property selection")
		seed        = flag.Int64("seed", 42, "generator seed")
		fig7Max     = flag.Int("fig7-max", 1000, "maximum property count for fig7")
		fig7Steps   = flag.Int("fig7-steps", 9, "measurement points for fig7")
		fig6Steps   = flag.Int("fig6-steps", 8, "measurement points for fig6")
		parallel    = flag.Int("parallel", 0, "worker count for the parallel experiment (defaults to NumCPU); the measured tables always run sequentially so their simulated timings stay deterministic")
		bgpText     = flag.String("bgp", "", "compile and run this BGP query on all four schemes (see internal/bgp for the syntax), instead of an experiment")
		bgpCount    = flag.Int("bgp-count", 12, "number of generated queries for the workloads experiment")
		bgpSeed     = flag.Int64("bgp-seed", 0, "workload-generator seed (defaults to -seed)")
		srvClients  = flag.Int("serve-clients", 4, "closed-loop concurrent clients per scheme for the serve experiment")
		srvOps      = flag.Int("serve-ops", 50, "timed operations per client for the serve experiment")
		srvQueries  = flag.Int("serve-queries", 8, "distinct generated queries for the serve experiment")
		srvCache    = flag.Int("serve-cache", 64, "plan-cache capacity for the serve experiment")
		srvReport   = flag.String("serve-report", "", "write the serve experiment's JSON report to this file")
		loadWorkers = flag.Int("load-workers", 0, "parallel worker count for the load experiment (defaults to NumCPU)")
		loadChunk   = flag.Int("load-chunk", 0, "scan-stage chunk bytes for the load experiment (defaults to 1MiB)")
		loadQuick   = flag.Bool("load-quick", false, "skip the load experiment's scheme-build/query-equivalence phase")
		loadReport  = flag.String("load-report", "", "write the load experiment's JSON report to this file")
		strQueries  = flag.Int("stream-queries", 10, "generated ORDER BY/LIMIT queries for the stream experiment")
		strHot      = flag.Bool("stream-hot", false, "run the stream experiment hot instead of cold")
		strOverlap  = flag.Bool("stream-overlap", false, "use the overlapped-I/O clock composition for the stream experiment")
		strReport   = flag.String("stream-report", "", "write the stream experiment's JSON report to this file")
		profQueries = flag.Int("profile-queries", 6, "generated BGP queries for the profile experiment")
		profCold    = flag.Bool("profile-cold", false, "run the profile experiment cold instead of hot")
		profReport  = flag.String("profile-report", "", "write the profile experiment's JSON report to this file")
		trcQueries  = flag.Int("trace-queries", 8, "generated BGP queries for the trace experiment")
		trcReps     = flag.Int("trace-reps", 3, "repetitions per cell for the trace experiment (min host time kept)")
		trcReport   = flag.String("trace-report", "", "write the trace experiment's JSON report to this file")
		wobQueries  = flag.Int("workload-obs-queries", 8, "generated BGP queries for the workload-obs experiment")
		wobReps     = flag.Int("workload-obs-reps", 3, "repetitions per cell for the workload-obs experiment (min host time kept)")
		wobReport   = flag.String("workload-obs-report", "", "write the workload-obs experiment's JSON report to this file")
		mutWriters  = flag.Int("mutate-writers", 4, "concurrent writer clients for the mutate experiment")
		mutOps      = flag.Int("mutate-ops", 75, "commits per writer for the mutate experiment")
		mutReaders  = flag.Int("mutate-readers", 4, "concurrent reader clients for the mutate experiment")
		mutReadOps  = flag.Int("mutate-read-ops", 200, "reads per reader for the mutate experiment")
		mutCompact  = flag.Int("mutate-compact", 50, "delta entries that trigger compaction in the mutate experiment (-1 never compacts)")
		mutGuard    = flag.Int("mutate-guard", 12, "generated queries for the mutate experiment's byte-identity guard")
		mutReport   = flag.String("mutate-report", "", "write the mutate experiment's JSON report to this file")
		version     = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: swanbench [flags] <experiment>\nexperiments: table1 fig1 table2 table4 table5 fig5 table6 table7 fig6 fig7 parallel workloads serve load stream profile trace workload-obs mutate sql gen all\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *version {
		fmt.Println("swanbench", buildinfo.Get())
		return
	}
	if *bgpText != "" {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "swanbench: -bgp runs instead of an experiment; drop the experiment argument")
			os.Exit(2)
		}
	} else if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	cfg := datagen.Config{Triples: *triples, Properties: *props, Interesting: *interesting, Seed: *seed}

	if flag.Arg(0) == "gen" {
		ds, err := datagen.Generate(cfg)
		fail(err)
		fail(rdf.WriteNTriples(os.Stdout, ds.Graph))
		return
	}

	fmt.Fprintf(os.Stderr, "generating %d triples over %d properties (seed %d)...\n", cfg.Triples, cfg.Properties, cfg.Seed)
	w, err := bench.NewWorkload(cfg)
	fail(err)

	if *bgpText != "" {
		runUserBGP(w, *bgpText)
		return
	}

	run := func(name string) {
		switch name {
		case "table1":
			section("Table 1: data set details")
			fmt.Print(bench.Table1(w))
		case "fig1":
			section("Figure 1: cumulative frequency distributions")
			fmt.Print(bench.FormatFig1(bench.Fig1(w, 20)))
		case "table2":
			section("Table 2: coverage of the query space")
			fmt.Print(bench.Table2(w))
		case "table4":
			section("Table 4: repetition results (C-Store, machines A and B)")
			rows, err := bench.Table4(w)
			fail(err)
			fmt.Print(bench.FormatTable4(rows))
		case "table5":
			section("Table 5: data relevant to a query")
			rows, err := bench.Table5(w)
			fail(err)
			fmt.Print(bench.FormatTable5(rows))
		case "fig5":
			section("Figure 5: I/O read history for q3 and q5")
			series, err := bench.Fig5(w, 20)
			fail(err)
			fmt.Print(bench.FormatFig5(series))
		case "table6":
			section("Table 6: experimental results for cold runs")
			systems, err := bench.FullGrid(w)
			fail(err)
			res, err := bench.RunGrid(systems, bench.Cold)
			fail(err)
			fmt.Print(bench.FormatGrid(res))
		case "table7":
			section("Table 7: experimental results for hot runs")
			systems, err := bench.FullGrid(w)
			fail(err)
			res, err := bench.RunGrid(systems, bench.Hot)
			fail(err)
			fmt.Print(bench.FormatGrid(res))
		case "fig6":
			section("Figure 6: execution time vs number of properties")
			pts, err := bench.Fig6(w, *fig6Steps)
			fail(err)
			fmt.Print(bench.FormatFig6(pts))
		case "fig7":
			section("Figure 7: scalability experiment (property splitting)")
			pts, err := bench.Fig7(w, *fig7Max, *fig7Steps, *seed+1)
			fail(err)
			fmt.Print(bench.FormatFig7(pts))
		case "parallel":
			workers := *parallel
			if workers <= 1 {
				workers = runtime.NumCPU()
			}
			section(fmt.Sprintf("Parallel execution: star queries, %d workers", workers))
			pts, err := bench.ParallelSweep(w, workers)
			fail(err)
			fmt.Print(bench.FormatParallel(pts, workers))
		case "workloads":
			wseed := *bgpSeed
			if wseed == 0 {
				wseed = *seed
			}
			section(fmt.Sprintf("Workloads: %d generated BGP queries (seed %d) through the query compiler", *bgpCount, wseed))
			systems, err := bench.BGPSystems(w)
			fail(err)
			res, err := bench.RunBGPWorkload(w, systems, *bgpCount, wseed, bench.Cold)
			fail(err)
			fmt.Print(bench.FormatBGPWorkload(res, systems, bench.Cold))
		case "serve":
			wseed := *bgpSeed
			if wseed == 0 {
				wseed = *seed
			}
			section(fmt.Sprintf("Serving: %d clients × %d ops over %d queries (seed %d) per scheme", *srvClients, *srvOps, *srvQueries, wseed))
			systems, err := bench.BGPSystems(w)
			fail(err)
			report, err := bench.RunServe(w, systems, bench.ServeOptions{
				Clients: *srvClients, Ops: *srvOps, Queries: *srvQueries,
				Seed: wseed, CacheSize: *srvCache,
			})
			fail(err)
			fmt.Print(bench.FormatServe(report))
			if *srvReport != "" {
				data, err := json.MarshalIndent(report, "", "  ")
				fail(err)
				fail(os.WriteFile(*srvReport, append(data, '\n'), 0o644))
				fmt.Fprintf(os.Stderr, "serve report written to %s\n", *srvReport)
			}
		case "load":
			workers := *loadWorkers
			if workers <= 0 {
				workers = runtime.NumCPU()
			}
			section(fmt.Sprintf("Load: bulk ingest, sequential vs %d workers", workers))
			report, err := bench.RunLoad(w, bench.LoadOptions{
				Workers: workers, ChunkBytes: *loadChunk, SkipQueries: *loadQuick,
			})
			fail(err)
			fmt.Print(bench.FormatLoad(report))
			if *loadReport != "" {
				data, err := json.MarshalIndent(report, "", "  ")
				fail(err)
				fail(os.WriteFile(*loadReport, append(data, '\n'), 0o644))
				fmt.Fprintf(os.Stderr, "load report written to %s\n", *loadReport)
			}
		case "stream":
			wseed := *bgpSeed
			if wseed == 0 {
				wseed = *seed
			}
			mode := bench.Cold
			if *strHot {
				mode = bench.Hot
			}
			section(fmt.Sprintf("Stream: streaming vs materializing executor, %d LIMIT queries (seed %d), %s runs", *strQueries, wseed, mode))
			systems, err := bench.BGPSystems(w)
			fail(err)
			report, err := bench.RunStream(w, systems, bench.StreamOptions{
				Queries: *strQueries, Seed: wseed, Mode: mode, Overlapped: *strOverlap,
			})
			fail(err)
			fmt.Print(bench.FormatStream(report))
			if *strReport != "" {
				data, err := json.MarshalIndent(report, "", "  ")
				fail(err)
				fail(os.WriteFile(*strReport, append(data, '\n'), 0o644))
				fmt.Fprintf(os.Stderr, "stream report written to %s\n", *strReport)
			}
		case "profile":
			wseed := *bgpSeed
			if wseed == 0 {
				wseed = *seed
			}
			mode := bench.Hot
			if *profCold {
				mode = bench.Cold
			}
			section(fmt.Sprintf("Profile: EXPLAIN ANALYZE on all schemes, %d generated queries (seed %d), %s runs", *profQueries, wseed, mode))
			systems, err := bench.BGPSystems(w)
			fail(err)
			report, err := bench.RunProfile(w, systems, bench.ProfileOptions{
				Queries: *profQueries, Seed: wseed, Mode: mode,
			})
			fail(err)
			fmt.Print(bench.FormatProfile(report))
			if *profReport != "" {
				data, err := json.MarshalIndent(report, "", "  ")
				fail(err)
				fail(os.WriteFile(*profReport, append(data, '\n'), 0o644))
				fmt.Fprintf(os.Stderr, "profile report written to %s\n", *profReport)
			}
		case "trace":
			wseed := *bgpSeed
			if wseed == 0 {
				wseed = *seed
			}
			section(fmt.Sprintf("Trace: tracing overhead through the serving layer, %d generated queries (seed %d)", *trcQueries, wseed))
			systems, err := bench.BGPSystems(w)
			fail(err)
			report, err := bench.RunTraceBench(w, systems, bench.TraceBenchOptions{
				Queries: *trcQueries, Seed: wseed, Reps: *trcReps,
			})
			fail(err)
			fmt.Print(bench.FormatTraceBench(report))
			if *trcReport != "" {
				data, err := json.MarshalIndent(report, "", "  ")
				fail(err)
				fail(os.WriteFile(*trcReport, append(data, '\n'), 0o644))
				fmt.Fprintf(os.Stderr, "trace report written to %s\n", *trcReport)
			}
		case "workload-obs":
			wseed := *bgpSeed
			if wseed == 0 {
				wseed = *seed
			}
			section(fmt.Sprintf("Workload-obs: registry overhead through the serving layer, %d generated queries (seed %d)", *wobQueries, wseed))
			systems, err := bench.BGPSystems(w)
			fail(err)
			report, err := bench.RunWorkloadObs(w, systems, bench.WorkloadObsOptions{
				Queries: *wobQueries, Seed: wseed, Reps: *wobReps,
			})
			fail(err)
			fmt.Print(bench.FormatWorkloadObs(report))
			if *wobReport != "" {
				data, err := json.MarshalIndent(report, "", "  ")
				fail(err)
				fail(os.WriteFile(*wobReport, append(data, '\n'), 0o644))
				fmt.Fprintf(os.Stderr, "workload-obs report written to %s\n", *wobReport)
			}
		case "mutate":
			wseed := *bgpSeed
			if wseed == 0 {
				wseed = *seed
			}
			section(fmt.Sprintf("Mutate: %d writers × %d commits, %d readers × %d reads through HTTP (seed %d)", *mutWriters, *mutOps, *mutReaders, *mutReadOps, wseed))
			report, err := bench.RunMutate(w, bench.MutateOptions{
				Writers: *mutWriters, Ops: *mutOps,
				Readers: *mutReaders, ReadOps: *mutReadOps,
				CompactEvery: *mutCompact, GuardQueries: *mutGuard,
				Seed: wseed,
			})
			fail(err)
			fmt.Print(bench.FormatMutate(report))
			if *mutReport != "" {
				data, err := json.MarshalIndent(report, "", "  ")
				fail(err)
				fail(os.WriteFile(*mutReport, append(data, '\n'), 0o644))
				fmt.Fprintf(os.Stderr, "mutate report written to %s\n", *mutReport)
			}
		case "sql":
			section("Generated SQL (triple-store, then vertically-partitioned)")
			names := make([]string, 0, len(w.Cat.AllProps))
			for _, p := range w.Cat.AllProps {
				names = append(names, fmt.Sprintf("prop_%d", p))
			}
			for _, q := range core.BenchmarkQueries() {
				ts, err := core.TripleSQL(q)
				fail(err)
				fmt.Printf("-- %v (triple-store)\n%s\n\n", q, ts)
				_, st, err := core.VertSQL(q, names)
				fail(err)
				fmt.Printf("-- %v (vertically-partitioned): %d unions, %d joins, %d table refs, %d bytes of SQL\n\n",
					q, st.Unions, st.Joins, st.Tables, st.Bytes)
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
	}

	if flag.Arg(0) == "all" {
		for _, name := range []string{"table1", "fig1", "table2", "table4", "table5", "fig5", "table6", "table7", "fig6", "fig7", "parallel", "workloads", "serve", "load", "stream", "profile", "trace", "workload-obs", "mutate"} {
			run(name)
		}
		return
	}
	run(flag.Arg(0))
}

// runUserBGP compiles one user-supplied query, prints the chosen join
// order and estimated cost, runs it on all four schemes (cold and hot),
// and decodes a sample of the result through the dictionary.
func runUserBGP(w *bench.Workload, text string) {
	compiled, err := bgp.CompileText(text, w.DS.Graph.Dict, w.Estimator())
	fail(err)
	section("BGP query")
	fmt.Printf("query:     %s\n", text)
	fmt.Printf("columns:   %s\n", strings.Join(compiled.Cols, ", "))
	fmt.Printf("est. cost: %.0f\n", compiled.Cost)
	for _, step := range compiled.Order {
		fmt.Printf("join:      %s\n", step)
	}
	fmt.Println()

	systems, err := bench.BGPSystems(w)
	fail(err)
	fmt.Printf("%-18s %12s %12s %12s %12s %8s\n",
		"system", "cold real", "cold user", "hot real", "hot user", "rows")
	var sample *rel.Rel
	for _, sys := range systems {
		cold, res, err := sys.MeasurePlan(compiled.Root, bench.Cold)
		fail(err)
		hot, _, err := sys.MeasurePlan(compiled.Root, bench.Hot)
		fail(err)
		if sample == nil {
			sample = res
		} else if !rel.Equal(sample, res) {
			fail(fmt.Errorf("%s returned a different result", sys.Name))
		}
		cr, cu := cold.Seconds()
		hr, hu := hot.Seconds()
		fmt.Printf("%-18s %11.3fs %11.3fs %11.3fs %11.3fs %8d\n",
			sys.Name, cr, cu, hr, hu, res.Len())
	}

	fmt.Printf("\nresult (%d rows", sample.Len())
	show := sample.Len()
	if show > 10 {
		show = 10
		fmt.Printf(", first %d", show)
	}
	fmt.Println("):")
	d := w.DS.Graph.Dict
	for i := 0; i < show; i++ {
		row := sample.Row(i)
		parts := make([]string, len(row))
		for j, v := range row {
			// Aggregate counts are plain numbers, not dictionary ids; an
			// unbound OPTIONAL variable is NULL, not a term.
			switch {
			case compiled.Counts[compiled.Cols[j]]:
				parts[j] = fmt.Sprint(v)
			case rdf.ID(v) == rdf.NoID:
				parts[j] = "NULL"
			default:
				parts[j] = d.Term(rdf.ID(v)).String()
			}
		}
		fmt.Println("  " + strings.Join(parts, "  "))
	}
}

func section(title string) {
	fmt.Printf("\n=== %s ===\n\n", title)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "swanbench:", err)
		os.Exit(1)
	}
}
