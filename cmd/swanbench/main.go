// Command swanbench regenerates every table and figure of the paper's
// evaluation on a synthetic Barton-shaped workload.
//
// Usage:
//
//	swanbench [flags] <experiment>
//
// Experiments:
//
//	table1   data set details
//	fig1     cumulative frequency distributions
//	table2   query-space coverage
//	table4   C-Store repetition on machines A and B (cold/hot, real/user)
//	table5   data read from disk and rows returned per query
//	fig5     I/O read history for q3 and q5
//	table6   full grid, cold runs
//	table7   full grid, hot runs
//	fig6     execution time vs number of aggregated properties
//	fig7     scale-up experiment (property splitting, 222 → 1000)
//	parallel host-time speedup of the worker-pool execution mode
//	sql      generated SQL for both schemes, with union/join counts
//	gen      write the generated data set as N-Triples to stdout
//	all      every experiment in paper order
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"blackswan/internal/bench"
	"blackswan/internal/core"
	"blackswan/internal/datagen"
	"blackswan/internal/rdf"
)

func main() {
	var (
		triples     = flag.Int("triples", 1_000_000, "number of triples to generate (Barton is 50,255,599)")
		props       = flag.Int("props", 222, "number of distinct properties")
		interesting = flag.Int("interesting", 28, "size of the interesting-property selection")
		seed        = flag.Int64("seed", 42, "generator seed")
		fig7Max     = flag.Int("fig7-max", 1000, "maximum property count for fig7")
		fig7Steps   = flag.Int("fig7-steps", 9, "measurement points for fig7")
		fig6Steps   = flag.Int("fig6-steps", 8, "measurement points for fig6")
		parallel    = flag.Int("parallel", 0, "worker count for the parallel experiment (defaults to NumCPU); the measured tables always run sequentially so their simulated timings stay deterministic")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: swanbench [flags] <experiment>\nexperiments: table1 fig1 table2 table4 table5 fig5 table6 table7 fig6 fig7 parallel sql gen all\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	cfg := datagen.Config{Triples: *triples, Properties: *props, Interesting: *interesting, Seed: *seed}

	if flag.Arg(0) == "gen" {
		ds, err := datagen.Generate(cfg)
		fail(err)
		fail(rdf.WriteNTriples(os.Stdout, ds.Graph))
		return
	}

	fmt.Fprintf(os.Stderr, "generating %d triples over %d properties (seed %d)...\n", cfg.Triples, cfg.Properties, cfg.Seed)
	w, err := bench.NewWorkload(cfg)
	fail(err)

	run := func(name string) {
		switch name {
		case "table1":
			section("Table 1: data set details")
			fmt.Print(bench.Table1(w))
		case "fig1":
			section("Figure 1: cumulative frequency distributions")
			fmt.Print(bench.FormatFig1(bench.Fig1(w, 20)))
		case "table2":
			section("Table 2: coverage of the query space")
			fmt.Print(bench.Table2(w))
		case "table4":
			section("Table 4: repetition results (C-Store, machines A and B)")
			rows, err := bench.Table4(w)
			fail(err)
			fmt.Print(bench.FormatTable4(rows))
		case "table5":
			section("Table 5: data relevant to a query")
			rows, err := bench.Table5(w)
			fail(err)
			fmt.Print(bench.FormatTable5(rows))
		case "fig5":
			section("Figure 5: I/O read history for q3 and q5")
			series, err := bench.Fig5(w, 20)
			fail(err)
			fmt.Print(bench.FormatFig5(series))
		case "table6":
			section("Table 6: experimental results for cold runs")
			systems, err := bench.FullGrid(w)
			fail(err)
			res, err := bench.RunGrid(systems, bench.Cold)
			fail(err)
			fmt.Print(bench.FormatGrid(res))
		case "table7":
			section("Table 7: experimental results for hot runs")
			systems, err := bench.FullGrid(w)
			fail(err)
			res, err := bench.RunGrid(systems, bench.Hot)
			fail(err)
			fmt.Print(bench.FormatGrid(res))
		case "fig6":
			section("Figure 6: execution time vs number of properties")
			pts, err := bench.Fig6(w, *fig6Steps)
			fail(err)
			fmt.Print(bench.FormatFig6(pts))
		case "fig7":
			section("Figure 7: scalability experiment (property splitting)")
			pts, err := bench.Fig7(w, *fig7Max, *fig7Steps, *seed+1)
			fail(err)
			fmt.Print(bench.FormatFig7(pts))
		case "parallel":
			workers := *parallel
			if workers <= 1 {
				workers = runtime.NumCPU()
			}
			section(fmt.Sprintf("Parallel execution: star queries, %d workers", workers))
			pts, err := bench.ParallelSweep(w, workers)
			fail(err)
			fmt.Print(bench.FormatParallel(pts, workers))
		case "sql":
			section("Generated SQL (triple-store, then vertically-partitioned)")
			names := make([]string, 0, len(w.Cat.AllProps))
			for _, p := range w.Cat.AllProps {
				names = append(names, fmt.Sprintf("prop_%d", p))
			}
			for _, q := range core.BenchmarkQueries() {
				ts, err := core.TripleSQL(q)
				fail(err)
				fmt.Printf("-- %v (triple-store)\n%s\n\n", q, ts)
				_, st, err := core.VertSQL(q, names)
				fail(err)
				fmt.Printf("-- %v (vertically-partitioned): %d unions, %d joins, %d table refs, %d bytes of SQL\n\n",
					q, st.Unions, st.Joins, st.Tables, st.Bytes)
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
	}

	if flag.Arg(0) == "all" {
		for _, name := range []string{"table1", "fig1", "table2", "table4", "table5", "fig5", "table6", "table7", "fig6", "fig7", "parallel"} {
			run(name)
		}
		return
	}
	run(flag.Arg(0))
}

func section(title string) {
	fmt.Printf("\n=== %s ===\n\n", title)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "swanbench:", err)
		os.Exit(1)
	}
}
