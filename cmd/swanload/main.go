// Command swanload parses an N-Triples file, dictionary-encodes it, and
// reports the Table 1 statistics of the data — the bulk-loading front half
// of the benchmark pipeline, usable on real RDF dumps.
//
// Usage:
//
//	swanload [-cfd] [file.nt]
//
// With no file argument it reads standard input.
package main

import (
	"flag"
	"fmt"
	"os"

	"blackswan/internal/rdf"
)

func main() {
	cfd := flag.Bool("cfd", false, "also print the Figure 1 cumulative frequency distributions")
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	g, err := rdf.ReadNTriples(in)
	if err != nil {
		fail(err)
	}
	dups := g.Normalize()
	st := rdf.ComputeStats(g)
	fmt.Print(st.FormatTable1())
	if dups > 0 {
		fmt.Printf("%-52s %14d\n", "duplicate statements removed", dups)
	}
	if *cfd {
		fmt.Println("\n% of total *        properties      subjects       objects")
		props := rdf.CFD(st.PropFreq, st.Triples, 20)
		subjs := rdf.CFD(st.SubjFreq, st.Triples, 20)
		objs := rdf.CFD(st.ObjFreq, st.Triples, 20)
		for i := range props {
			fmt.Printf("%15.1f %14.1f%% %12.1f%% %12.1f%%\n",
				props[i].PctItems, props[i].PctTriples, subjs[i].PctTriples, objs[i].PctTriples)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "swanload:", err)
	os.Exit(1)
}
