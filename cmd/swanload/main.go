// Command swanload parses an N-Triples file, dictionary-encodes it, and
// reports the Table 1 statistics of the data — the bulk-loading front half
// of the benchmark pipeline, usable on real RDF dumps.
//
// Usage:
//
//	swanload [-cfd] [-parallel N] [-det] [file.nt]
//
// With no file argument it reads standard input. -parallel N loads
// through the pipelined ingest subsystem with N workers (0 means one per
// CPU); -det selects its deterministic mode, whose output is
// byte-identical to the sequential loader. Throughput and the per-stage
// breakdown go to standard error, the statistics to standard output.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"blackswan/internal/ingest"
	"blackswan/internal/rdf"
)

func main() {
	cfd := flag.Bool("cfd", false, "also print the Figure 1 cumulative frequency distributions")
	parallel := flag.Int("parallel", 1, "ingest worker count; 0 means one per CPU, 1 is the sequential baseline")
	det := flag.Bool("det", false, "deterministic parallel mode: byte-identical to the sequential loader")
	chunk := flag.Int("chunk", 0, "scan-stage chunk bytes (default 1MiB)")
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	workers := *parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	g, lst, err := ingest.Load(in, ingest.Options{
		Workers: workers, ChunkBytes: *chunk, Deterministic: *det,
	})
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "loaded %d statements (%d lines, %.1f MiB) in %.3fs with %d workers: %.0f triples/sec\n",
		lst.Statements, lst.Lines, float64(lst.Bytes)/(1<<20), lst.Wall.Seconds(), lst.Workers, lst.TriplesPerSec())
	fmt.Fprintf(os.Stderr, "stages (busy): scan %.3fs, parse %.3fs, assemble %.3fs over %d chunks\n",
		lst.ScanBusy.Seconds(), lst.ParseBusy.Seconds(), lst.AssembleBusy.Seconds(), lst.Chunks)
	fmt.Fprintf(os.Stderr, "simulated: blocking %.3fs vs pipelined %.3fs (overlap gain %.2fx; cpu %.3fs, io %.3fs)\n",
		lst.SimSync.Seconds(), lst.SimOverlapped.Seconds(), lst.OverlapGain(),
		lst.SimCPU.Seconds(), lst.SimIO.Seconds())

	dups := g.Normalize()
	st := rdf.ComputeStats(g)
	fmt.Print(st.FormatTable1())
	if dups > 0 {
		fmt.Printf("%-52s %14d\n", "duplicate statements removed", dups)
	}
	if *cfd {
		fmt.Println("\n% of total *        properties      subjects       objects")
		props := rdf.CFD(st.PropFreq, st.Triples, 20)
		subjs := rdf.CFD(st.SubjFreq, st.Triples, 20)
		objs := rdf.CFD(st.ObjFreq, st.Triples, 20)
		for i := range props {
			fmt.Printf("%15.1f %14.1f%% %12.1f%% %12.1f%%\n",
				props[i].PctItems, props[i].PctTriples, subjs[i].PctTriples, objs[i].PctTriples)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "swanload:", err)
	os.Exit(1)
}
