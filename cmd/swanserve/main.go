// Command swanserve is the HTTP front-end of the query-serving subsystem:
// it generates a Barton-shaped data set, loads it into all four storage
// schemes, and serves BGP queries over JSON with a shared plan cache and
// bounded admission.
//
// Usage:
//
//	swanserve [-addr :8080] [-triples 100000] [-props 60] [...]
//
// With -ingest file.nt the dataset comes from the file instead, loaded
// through the parallel ingest pipeline; the load's throughput and
// simulated pipeline-overlap figures then appear at /metrics and /stats.
// -slow-threshold enables the slow-query log (readable at /debug/slow),
// -slow-log bounds its ring.
//
// Endpoints (see internal/serve):
//
//	GET  /query?q=<bgp text>&system=<name>[&limit=n][&timeout=d][&profile=1]
//	GET  /systems
//	GET  /stats
//	GET  /metrics       Prometheus text exposition
//	GET  /debug/slow    slow-query log, newest first
//	POST /reload[?seed=N][&triples=N][&props=N]
//
// /reload regenerates the dataset with the given parameters (defaulting
// to the process flags), loads it into all four schemes, and atomically
// swaps it in under live traffic: in-flight queries finish on the old
// snapshot, new requests see the new data, and the plan cache restarts
// empty. Reloads serialize; queries never block on one.
//
// Example:
//
//	swanserve &
//	curl 'localhost:8080/query?q=SELECT%20%3Fs%20WHERE%20%7B%20%3Fs%20%3Fp%20%3Fo%20%7D&limit=3'
//	curl -X POST 'localhost:8080/reload?seed=7'
//
// Malformed queries return HTTP 400 with the parse position (line, column,
// byte offset); unknown systems 404; expired request timeouts 504.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"blackswan/internal/bench"
	"blackswan/internal/datagen"
	"blackswan/internal/ingest"
	"blackswan/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		triples     = flag.Int("triples", 100_000, "number of triples to generate")
		props       = flag.Int("props", 60, "number of distinct properties")
		interesting = flag.Int("interesting", 28, "size of the interesting-property selection")
		seed        = flag.Int64("seed", 42, "generator seed")
		cacheSize   = flag.Int("cache", serve.DefaultCacheSize, "plan-cache capacity in entries (negative disables)")
		maxConc     = flag.Int("max-concurrent", runtime.GOMAXPROCS(0), "admission bound: concurrently executing queries")
		workers     = flag.Int("workers", 1, "core executor workers per admitted query")
		ingestFile  = flag.String("ingest", "", "serve this N-Triples file (loaded through the parallel ingest pipeline) instead of generated data")
		ingestWk    = flag.Int("ingest-workers", 0, "ingest pipeline workers (0 means one per CPU)")
		slowThresh  = flag.Duration("slow-threshold", 0, "record served queries at or above this latency in the slow-query log (0 disables)")
		slowSize    = flag.Int("slow-log", serve.DefaultSlowLogSize, "slow-query log capacity in entries")
	)
	flag.Parse()

	var w *bench.Workload
	var ingestSnap *serve.IngestSnapshot
	if *ingestFile != "" {
		fmt.Fprintf(os.Stderr, "ingesting %s through the parallel pipeline...\n", *ingestFile)
		var err error
		w, ingestSnap, err = ingestWorkload(*ingestFile, *ingestWk)
		fail(err)
	} else {
		fmt.Fprintf(os.Stderr, "generating %d triples over %d properties (seed %d)...\n", *triples, *props, *seed)
		var err error
		w, err = bench.NewWorkload(datagen.Config{
			Triples: *triples, Properties: *props, Interesting: *interesting, Seed: *seed,
		})
		fail(err)
	}
	fmt.Fprintln(os.Stderr, "loading the four storage schemes...")
	systems, err := bench.BGPSystems(w)
	fail(err)
	svc, err := bench.NewService(w, systems, serve.Config{
		MaxConcurrent: *maxConc, ExecWorkers: *workers, CacheSize: *cacheSize,
		SlowQueryThreshold: *slowThresh, SlowLogSize: *slowSize,
	})
	fail(err)
	if ingestSnap != nil {
		svc.RecordIngest(*ingestSnap)
	}

	mux := http.NewServeMux()
	mux.Handle("/", serve.NewHandler(svc))
	var reloadMu sync.Mutex // one dataset build at a time; queries keep flowing
	mux.HandleFunc("/reload", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, `{"error":"use POST"}`, http.StatusMethodNotAllowed)
			return
		}
		cfg := datagen.Config{
			Triples: intParam(r, "triples", *triples), Properties: intParam(r, "props", *props),
			Interesting: *interesting, Seed: int64(intParam(r, "seed", int(*seed))),
		}
		reloadMu.Lock()
		defer reloadMu.Unlock()
		start := time.Now()
		// Bad generation parameters are the client's mistake (400); a
		// failure while building or swapping the dataset is ours (500).
		status := http.StatusBadRequest
		nw, err := bench.NewWorkload(cfg)
		if err == nil {
			status = http.StatusInternalServerError
			var nsys []*bench.System
			if nsys, err = bench.BGPSystems(nw); err == nil {
				var targets []serve.Target
				if targets, err = bench.ServeTargets(nsys); err == nil {
					err = svc.Swap(nw.DS.Graph.Dict, nw.Estimator(), targets...)
				}
			}
		}
		if err != nil {
			rw.Header().Set("Content-Type", "application/json")
			rw.WriteHeader(status)
			_ = json.NewEncoder(rw).Encode(map[string]string{"error": err.Error()})
			return
		}
		fmt.Fprintf(os.Stderr, "reloaded %d triples (seed %d) in %s; snapshot swapped\n",
			nw.DS.Graph.Len(), cfg.Seed, time.Since(start).Round(time.Millisecond))
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(map[string]any{
			"triples": nw.DS.Graph.Len(), "seed": cfg.Seed,
			"loadSecs": time.Since(start).Seconds(), "systems": svc.Systems(),
		})
	})

	fmt.Fprintf(os.Stderr, "serving %v on %s (cache %d entries, %d admission slots × %d workers)\n",
		svc.Systems(), *addr, *cacheSize, *maxConc, *workers)
	fail(http.ListenAndServe(*addr, mux))
}

// ingestWorkload loads an N-Triples file through the parallel ingest
// pipeline and derives the serving workload from the loaded graph, keeping
// the load's stage breakdown for RecordIngest.
func ingestWorkload(path string, workers int) (*bench.Workload, *serve.IngestSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	g, st, err := ingest.Load(f, ingest.Options{Workers: workers})
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "ingested %d statements in %.3fs with %d workers (%.0f triples/sec; simulated overlap gain %.2fx)\n",
		st.Statements, st.Wall.Seconds(), st.Workers, st.TriplesPerSec(), st.OverlapGain())
	w, err := bench.WorkloadFromGraph(g)
	if err != nil {
		return nil, nil, err
	}
	return w, &serve.IngestSnapshot{
		Statements: st.Statements,
		Bytes:      st.Bytes,
		Wall:       st.Wall,
		StageBusy: map[string]time.Duration{
			"scan":     st.ScanBusy,
			"parse":    st.ParseBusy,
			"assemble": st.AssembleBusy,
		},
		SimCPU:        st.SimCPU,
		SimIO:         st.SimIO,
		SimSync:       st.SimSync,
		SimOverlapped: st.SimOverlapped,
	}, nil
}

// intParam reads an integer query parameter, falling back to def.
func intParam(r *http.Request, name string, def int) int {
	v := r.FormValue(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "swanserve:", err)
		os.Exit(1)
	}
}
