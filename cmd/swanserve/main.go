// Command swanserve is the HTTP front-end of the query-serving subsystem:
// it generates a Barton-shaped data set, loads it into all four storage
// schemes, and serves BGP queries over JSON with a shared plan cache and
// bounded admission.
//
// Usage:
//
//	swanserve [-addr :8080] [-triples 100000] [-props 60] [...]
//
// Endpoints (see internal/serve):
//
//	GET /query?q=<bgp text>&system=<name>[&limit=n][&timeout=d]
//	GET /systems
//	GET /stats
//
// Example:
//
//	swanserve &
//	curl 'localhost:8080/query?q=SELECT%20%3Fs%20WHERE%20%7B%20%3Fs%20%3Fp%20%3Fo%20%7D&limit=3'
//
// Malformed queries return HTTP 400 with the parse position (line, column,
// byte offset); unknown systems 404; expired request timeouts 504.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"

	"blackswan/internal/bench"
	"blackswan/internal/datagen"
	"blackswan/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		triples     = flag.Int("triples", 100_000, "number of triples to generate")
		props       = flag.Int("props", 60, "number of distinct properties")
		interesting = flag.Int("interesting", 28, "size of the interesting-property selection")
		seed        = flag.Int64("seed", 42, "generator seed")
		cacheSize   = flag.Int("cache", serve.DefaultCacheSize, "plan-cache capacity in entries (negative disables)")
		maxConc     = flag.Int("max-concurrent", runtime.GOMAXPROCS(0), "admission bound: concurrently executing queries")
		workers     = flag.Int("workers", 1, "core executor workers per admitted query")
	)
	flag.Parse()

	fmt.Fprintf(os.Stderr, "generating %d triples over %d properties (seed %d)...\n", *triples, *props, *seed)
	w, err := bench.NewWorkload(datagen.Config{
		Triples: *triples, Properties: *props, Interesting: *interesting, Seed: *seed,
	})
	fail(err)
	fmt.Fprintln(os.Stderr, "loading the four storage schemes...")
	systems, err := bench.BGPSystems(w)
	fail(err)
	svc, err := bench.NewService(w, systems, serve.Config{
		MaxConcurrent: *maxConc, ExecWorkers: *workers, CacheSize: *cacheSize,
	})
	fail(err)

	fmt.Fprintf(os.Stderr, "serving %v on %s (cache %d entries, %d admission slots × %d workers)\n",
		svc.Systems(), *addr, *cacheSize, *maxConc, *workers)
	fail(http.ListenAndServe(*addr, serve.NewHandler(svc)))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "swanserve:", err)
		os.Exit(1)
	}
}
