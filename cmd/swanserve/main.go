// Command swanserve is the HTTP front-end of the query-serving subsystem:
// it generates a Barton-shaped data set, loads it into all four storage
// schemes, and serves BGP queries over JSON with a shared plan cache and
// bounded admission.
//
// Usage:
//
//	swanserve [-addr :8080] [-triples 100000] [-props 60] [...]
//
// With -ingest file.nt the dataset comes from the file instead, loaded
// through the parallel ingest pipeline; the load's throughput and
// simulated pipeline-overlap figures then appear at /metrics and /stats.
// -slow-threshold enables the slow-query log (readable at /debug/slow),
// -slow-log bounds its ring.
//
// Every request is traced: -trace-sample sets the head sampling rate
// (default 1.0 — keep everything; slow and errored requests are kept
// regardless), -trace-ring bounds the finished-trace ring served at
// /debug/traces. Responses carry the trace ID (traceId field and
// traceparent header) and every structured log line (slog, stderr)
// carries it too, so one ID joins response, trace, slow-log entry and
// log line. -log-level tunes verbosity (debug logs every served query).
// -pprof mounts Go's net/http/pprof handlers under /debug/pprof/.
//
// Every served query is also folded into the workload registry under its
// fingerprint — the hash of the canonical query text, returned in each
// response — which aggregates counts, rows, latency/queue-wait quantile
// sketches, per-system splits and (for profiled runs) per-operator
// est-vs-actual q-errors. Read it at /debug/workload; its totals and top
// shapes also appear on /metrics as blackswan_workload_* series.
// -version prints the build identity (also the blackswan_build_info
// series) and exits.
//
// The write path is on by default (-writes=false disables it): POST
// /update applies one INSERT DATA / DELETE DATA request transactionally
// and installs a new immutable dataset version — readers keep their
// snapshot, responses carry the version, and /metrics exports it as
// blackswan_dataset_version. Once the delta reaches -compact-every
// entries the commit instead folds base and delta into a full rebuild of
// all four schemes (recomputing statistics and the cardinality
// estimator). /debug/versions lists the version history, newest first.
//
// Endpoints (see internal/serve):
//
//	GET  /query?q=<bgp text>&system=<name>[&limit=n][&timeout=d][&profile=1]
//	GET  /systems
//	GET  /stats
//	GET  /metrics       Prometheus text exposition
//	GET  /debug/workload[?by=time|count|qerror][&system=<name>][&limit=n]
//	GET  /debug/slow[?system=<name>][&limit=n]    slow-query log, newest first
//	GET  /debug/traces[?system=<name>][&limit=n]  retained traces, newest first
//	GET  /debug/traces/<id>[?format=otlp]
//	GET  /debug/pprof/  Go runtime profiles (with -pprof)
//	GET  /debug/versions[?limit=n]                dataset version history
//	POST /update        u=<INSERT DATA { ... } | DELETE DATA { ... }>
//	POST /reload[?seed=N][&triples=N][&props=N]
//
// /reload regenerates the dataset with the given parameters (defaulting
// to the process flags), loads it into all four schemes, and atomically
// swaps it in under live traffic: in-flight queries finish on the old
// snapshot, new requests see the new data, and the plan cache restarts
// empty. Reloads serialize; queries never block on one. With writes
// enabled the reload rebases the mutator, so it also bumps the dataset
// version.
//
// Example:
//
//	swanserve &
//	curl 'localhost:8080/query?q=SELECT%20%3Fs%20WHERE%20%7B%20%3Fs%20%3Fp%20%3Fo%20%7D&limit=3'
//	curl -X POST 'localhost:8080/reload?seed=7'
//
// Malformed queries return HTTP 400 with the parse position (line, column,
// byte offset); unknown systems 404; expired request timeouts 504.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"blackswan/internal/bench"
	"blackswan/internal/buildinfo"
	"blackswan/internal/datagen"
	"blackswan/internal/ingest"
	"blackswan/internal/serve"
	"blackswan/internal/trace"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		triples     = flag.Int("triples", 100_000, "number of triples to generate")
		props       = flag.Int("props", 60, "number of distinct properties")
		interesting = flag.Int("interesting", 28, "size of the interesting-property selection")
		seed        = flag.Int64("seed", 42, "generator seed")
		cacheSize   = flag.Int("cache", serve.DefaultCacheSize, "plan-cache capacity in entries (negative disables)")
		maxConc     = flag.Int("max-concurrent", runtime.GOMAXPROCS(0), "admission bound: concurrently executing queries")
		workers     = flag.Int("workers", 1, "core executor workers per admitted query")
		ingestFile  = flag.String("ingest", "", "serve this N-Triples file (loaded through the parallel ingest pipeline) instead of generated data")
		ingestWk    = flag.Int("ingest-workers", 0, "ingest pipeline workers (0 means one per CPU)")
		slowThresh  = flag.Duration("slow-threshold", 0, "record served queries at or above this latency in the slow-query log (0 disables)")
		slowSize    = flag.Int("slow-log", serve.DefaultSlowLogSize, "slow-query log capacity in entries")
		traceRate   = flag.Float64("trace-sample", 1.0, "head sampling rate for request traces in [0,1]; slow and errored requests are kept regardless")
		traceRing   = flag.Int("trace-ring", trace.DefaultRingSize, "finished-trace ring capacity (0 disables tracing)")
		logLevel    = flag.String("log-level", "info", "structured-log level: debug, info, warn, error")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		writes      = flag.Bool("writes", true, "enable the write path (POST /update with INSERT DATA / DELETE DATA)")
		compactEvry = flag.Int("compact-every", 50, "delta entries that trigger a compacting rebuild of all four schemes (-1 never compacts)")
		version     = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("swanserve", buildinfo.Get())
		return
	}

	log := newLogger(*logLevel)
	var tracer *trace.Tracer
	if *traceRing > 0 {
		tracer = trace.New(trace.Config{SampleRate: *traceRate, RingSize: *traceRing, Service: "swanserve"})
	}

	var w *bench.Workload
	var ingestSnap *serve.IngestSnapshot
	if *ingestFile != "" {
		log.Info("ingesting through the parallel pipeline", "file", *ingestFile)
		var err error
		w, ingestSnap, err = ingestWorkload(log, *ingestFile, *ingestWk)
		fail(err)
	} else {
		log.Info("generating dataset", "triples", *triples, "props", *props, "seed", *seed)
		var err error
		w, err = bench.NewWorkload(datagen.Config{
			Triples: *triples, Properties: *props, Interesting: *interesting, Seed: *seed,
		})
		fail(err)
	}
	log.Info("loading the four storage schemes")
	systems, err := bench.BGPSystems(w)
	fail(err)
	svc, err := bench.NewService(w, systems, serve.Config{
		MaxConcurrent: *maxConc, ExecWorkers: *workers, CacheSize: *cacheSize,
		SlowQueryThreshold: *slowThresh, SlowLogSize: *slowSize,
		Tracer: tracer, Logger: log,
	})
	fail(err)
	if ingestSnap != nil {
		svc.RecordIngest(*ingestSnap)
	}
	var mut *serve.Mutator
	if *writes {
		mut, err = bench.NewMutator(svc, w, systems, *compactEvry)
		fail(err)
	}

	mux := http.NewServeMux()
	mux.Handle("/", serve.NewHandler(svc))
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	var reloadMu sync.Mutex // one dataset build at a time; queries keep flowing
	mux.HandleFunc("/reload", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, `{"error":"use POST"}`, http.StatusMethodNotAllowed)
			return
		}
		cfg := datagen.Config{
			Triples: intParam(r, "triples", *triples), Properties: intParam(r, "props", *props),
			Interesting: *interesting, Seed: int64(intParam(r, "seed", int(*seed))),
		}
		reloadMu.Lock()
		defer reloadMu.Unlock()
		start := time.Now()
		// Bad generation parameters are the client's mistake (400); a
		// failure while building or swapping the dataset is ours (500).
		status := http.StatusBadRequest
		nw, err := bench.NewWorkload(cfg)
		if err == nil {
			status = http.StatusInternalServerError
			var nsys []*bench.System
			if nsys, err = bench.BGPSystems(nw); err == nil {
				var targets []serve.Target
				if targets, err = bench.ServeTargets(nsys); err == nil {
					// With the write path on, the reload goes through the
					// mutator so its delta state rebases onto the new
					// dataset; both paths install one new version.
					if mut != nil {
						err = mut.Rebase(nw.DS.Graph, nw.Cat, nw.Estimator(), targets)
					} else {
						err = svc.Swap(nw.DS.Graph.Dict, nw.Estimator(), targets...)
					}
				}
			}
		}
		if err != nil {
			log.Warn("reload failed", "error", err.Error(), "seed", cfg.Seed)
			rw.Header().Set("Content-Type", "application/json")
			rw.WriteHeader(status)
			_ = json.NewEncoder(rw).Encode(map[string]string{"error": err.Error()})
			return
		}
		log.Info("reloaded dataset",
			"triples", nw.DS.Graph.Len(), "seed", cfg.Seed,
			"loadSecs", time.Since(start).Seconds())
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(map[string]any{
			"triples": nw.DS.Graph.Len(), "seed": cfg.Seed,
			"loadSecs": time.Since(start).Seconds(), "systems": svc.Systems(),
		})
	})

	log.Info("serving",
		"systems", fmt.Sprint(svc.Systems()), "addr", *addr,
		"cache", *cacheSize, "admission", *maxConc, "workers", *workers,
		"traceSample", *traceRate, "pprof", *pprofOn,
		"writes", *writes, "compactEvery", *compactEvry)
	fail(http.ListenAndServe(*addr, mux))
}

// newLogger builds the process's structured logger: slog text lines on
// stderr at the requested level.
func newLogger(level string) *slog.Logger {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		lv = slog.LevelInfo
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv}))
}

// ingestWorkload loads an N-Triples file through the parallel ingest
// pipeline and derives the serving workload from the loaded graph, keeping
// the load's stage breakdown for RecordIngest.
func ingestWorkload(log *slog.Logger, path string, workers int) (*bench.Workload, *serve.IngestSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	g, st, err := ingest.Load(f, ingest.Options{Workers: workers, Logger: log})
	if err != nil {
		return nil, nil, err
	}
	w, err := bench.WorkloadFromGraph(g)
	if err != nil {
		return nil, nil, err
	}
	return w, &serve.IngestSnapshot{
		Statements: st.Statements,
		Bytes:      st.Bytes,
		Wall:       st.Wall,
		StageBusy: map[string]time.Duration{
			"scan":     st.ScanBusy,
			"parse":    st.ParseBusy,
			"assemble": st.AssembleBusy,
		},
		SimCPU:        st.SimCPU,
		SimIO:         st.SimIO,
		SimSync:       st.SimSync,
		SimOverlapped: st.SimOverlapped,
	}, nil
}

// intParam reads an integer query parameter, falling back to def.
func intParam(r *http.Request, name string, def int) int {
	v := r.FormValue(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "swanserve:", err)
		os.Exit(1)
	}
}
