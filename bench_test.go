// Package blackswan's root benchmark suite: one testing.B benchmark per
// table and figure of the paper's evaluation, so
//
//	go test -bench=. -benchmem
//
// regenerates every experiment (at a reduced scale; use cmd/swanbench for
// full-scale runs and formatted output). Each benchmark reports the key
// simulated quantity of its experiment as custom metrics.
package blackswan_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"blackswan/internal/bench"
	"blackswan/internal/core"
	"blackswan/internal/datagen"
	"blackswan/internal/rdf"
	"blackswan/internal/simio"
)

var (
	benchOnce sync.Once
	benchWL   *bench.Workload
	benchErr  error
)

// workload is shared across benchmarks; generation is not part of any
// measured loop.
func workload(b *testing.B) *bench.Workload {
	b.Helper()
	benchOnce.Do(func() {
		benchWL, benchErr = bench.NewWorkload(datagen.Config{
			Triples: 150_000, Properties: 222, Interesting: 28, Seed: 42,
		})
	})
	if benchErr != nil {
		b.Fatalf("workload: %v", benchErr)
	}
	return benchWL
}

// BenchmarkTable1Stats regenerates the data set details (Table 1).
func BenchmarkTable1Stats(b *testing.B) {
	w := workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := w.DS.Stats()
		if st.Triples == 0 {
			b.Fatal("no triples")
		}
	}
}

// BenchmarkFig1CFD regenerates the cumulative frequency distributions.
func BenchmarkFig1CFD(b *testing.B) {
	w := workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := bench.Fig1(w, 20)
		if len(series) != 3 {
			b.Fatal("bad series")
		}
	}
}

// BenchmarkTable2Coverage regenerates the query-space coverage analysis.
func BenchmarkTable2Coverage(b *testing.B) {
	w := workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(core.Table2(w.Cat.Consts)) != 8 {
			b.Fatal("bad coverage")
		}
	}
}

// BenchmarkTable4CStoreRedo regenerates the Section 3 repetition experiment.
func BenchmarkTable4CStoreRedo(b *testing.B) {
	w := workload(b)
	b.ResetTimer()
	var geo float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table4(w)
		if err != nil {
			b.Fatal(err)
		}
		geo = rows[0].Geo // machine A, cold, real
	}
	b.ReportMetric(geo, "simColdG-s")
}

// BenchmarkTable5DataRead regenerates the per-query I/O volume table.
func BenchmarkTable5DataRead(b *testing.B) {
	w := workload(b)
	b.ResetTimer()
	var mb float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table5(w)
		if err != nil {
			b.Fatal(err)
		}
		var total int64
		for _, r := range rows {
			total += r.BytesRead
		}
		mb = float64(total) / 1e6
	}
	b.ReportMetric(mb, "simMBread")
}

// BenchmarkFig5IOHistory regenerates the I/O read-history traces.
func BenchmarkFig5IOHistory(b *testing.B) {
	w := workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, err := bench.Fig5(w, 20)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 4 {
			b.Fatal("bad series")
		}
	}
}

// gridBench shares loaded systems across the two grid benchmarks.
var (
	gridOnce sync.Once
	gridSys  []*bench.System
	gridErr  error
)

func gridSystems(b *testing.B) []*bench.System {
	b.Helper()
	w := workload(b)
	gridOnce.Do(func() {
		gridSys, gridErr = bench.FullGrid(w)
	})
	if gridErr != nil {
		b.Fatal(gridErr)
	}
	return gridSys
}

// BenchmarkTable6Cold regenerates the cold-run grid (the paper's main
// result) and reports the simulated geometric means that decide the
// row-store verdict.
func BenchmarkTable6Cold(b *testing.B) {
	systems := gridSystems(b)
	b.ResetTimer()
	var pso, vert float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunGrid(systems, bench.Cold)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			switch r.System {
			case "DBX triple PSO":
				pso = r.GStarReal
			case "DBX vert SO":
				vert = r.GStarReal
			}
		}
	}
	b.ReportMetric(pso, "simDBXtripleG*-s")
	b.ReportMetric(vert, "simDBXvertG*-s")
}

// BenchmarkTable7Hot regenerates the hot-run grid.
func BenchmarkTable7Hot(b *testing.B) {
	systems := gridSystems(b)
	b.ResetTimer()
	var vertU float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunGrid(systems, bench.Hot)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.System == "MonetDB vert SO" {
				vertU = r.GStarUser
			}
		}
	}
	b.ReportMetric(vertU, "simMonetVertG*user-s")
}

// BenchmarkFig6PropertySweep regenerates the 28→222 property sweep.
func BenchmarkFig6PropertySweep(b *testing.B) {
	w := workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := bench.Fig6(w, 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 16 {
			b.Fatalf("points = %d", len(pts))
		}
	}
}

// BenchmarkFig7ScaleUp regenerates the 222→1000 property-splitting
// experiment and reports the final vert/triple ratio (the crossover).
func BenchmarkFig7ScaleUp(b *testing.B) {
	w := workload(b)
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		pts, err := bench.Fig7(w, 1000, 3, 99)
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		ratio = last.VertSec / last.TripleSec
	}
	b.ReportMetric(ratio, "vert/triple@1000")
}

// The remaining benchmarks are conventional micro-benchmarks of the
// underlying machinery (real wall-clock time, not simulated).

// BenchmarkQ2TriplePSOHot measures the actual execution engine throughput
// for the most join-heavy restricted query.
func BenchmarkQ2TriplePSOHot(b *testing.B) {
	w := workload(b)
	sys, err := bench.NewMonetTriple(w, rdf.PSO, simio.MachineB())
	if err != nil {
		b.Fatal(err)
	}
	q := core.Query{ID: core.Q2}
	if _, err := sys.DB.Run(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.DB.Run(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ8VertHot measures the object-join black swan on the vertical
// scheme.
func BenchmarkQ8VertHot(b *testing.B) {
	w := workload(b)
	sys, err := bench.NewMonetVert(w, simio.MachineB())
	if err != nil {
		b.Fatal(err)
	}
	q := core.Query{ID: core.Q8}
	if _, err := sys.DB.Run(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.DB.Run(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelPlanExecution measures the worker-pool execution mode
// on the widest per-property fan-out (q2* on the column-store vertical
// scheme), reporting the host-time speedup over sequential execution as a
// custom metric. On a single-CPU host the speedup hovers around 1.0 — the
// pool proves determinism, not parallelism.
func BenchmarkParallelPlanExecution(b *testing.B) {
	w := workload(b)
	sys, err := bench.NewMonetVert(w, simio.MachineB())
	if err != nil {
		b.Fatal(err)
	}
	q := core.Query{ID: core.Q2, Star: true}
	run := func(workers int) time.Duration {
		sys.SetParallel(workers)
		defer sys.SetParallel(1)
		start := time.Now()
		if _, err := sys.DB.Run(q); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	run(1) // warm-up
	b.ResetTimer()
	var speedup float64
	for i := 0; i < b.N; i++ {
		seq := run(1)
		par := run(runtime.NumCPU())
		speedup = float64(seq) / float64(par)
	}
	b.ReportMetric(speedup, "seq/par-hosttime")
}

// BenchmarkGenerate measures the data generator itself.
func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := datagen.Generate(datagen.Config{
			Triples: 60_000, Properties: 222, Interesting: 28, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSplitProperties measures the Figure 7 transform.
func BenchmarkSplitProperties(b *testing.B) {
	w := workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := datagen.SplitProperties(w.DS, 1000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
