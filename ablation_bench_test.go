// Ablation benchmarks for the design choices DESIGN.md calls out: B+tree
// key-prefix compression, column RLE compression, and the C-Store buffer
// restriction. Each reports the simulated quantity the mechanism changes,
// so `go test -bench=Ablation` quantifies every mechanism's contribution.
package blackswan_test

import (
	"testing"

	"blackswan/internal/colstore"
	"blackswan/internal/core"
	"blackswan/internal/rdf"
	"blackswan/internal/rel"
	"blackswan/internal/rowstore"
	"blackswan/internal/simio"
)

// BenchmarkAblationPrefixCompression quantifies what B+tree key-prefix
// compression buys the PSO-clustered triple-store: the on-disk footprint
// ratio and the cold full-scan I/O time ratio. The paper's Section 4.1
// argument — "in practice not storing the entire property column" — depends
// on this mechanism.
func BenchmarkAblationPrefixCompression(b *testing.B) {
	w := workload(b)
	rows := rel.NewCap(3, w.DS.Graph.Len())
	for _, t := range w.DS.Graph.Triples {
		rows.Append(uint64(t.S), uint64(t.P), uint64(t.O))
	}
	build := func(compress bool) (*rowstore.Engine, *rowstore.Table) {
		store := simio.NewStore(simio.Config{Machine: simio.MachineB(), PoolBytes: 8 << 30})
		eng := rowstore.NewEngine(store)
		t, err := eng.CreateTable(rowstore.TableSpec{
			Name: "triples", Width: 3,
			Clustered:      rowstore.Perm{1, 0, 2}, // PSO
			PrefixCompress: compress,
		}, rows)
		if err != nil {
			b.Fatal(err)
		}
		return eng, t
	}
	engC, tC := build(true)
	engP, tP := build(false)

	coldScanIO := func(eng *rowstore.Engine, t *rowstore.Table) float64 {
		eng.Store.DropCaches()
		eng.Store.Clock().Reset()
		eng.ScanAll(t)
		return eng.Store.Clock().IO().Seconds()
	}
	b.ResetTimer()
	var sizeRatio, ioRatio float64
	for i := 0; i < b.N; i++ {
		sizeRatio = float64(tP.SizeBytes()) / float64(tC.SizeBytes())
		ioRatio = coldScanIO(engP, tP) / coldScanIO(engC, tC)
	}
	b.ReportMetric(sizeRatio, "plain/compressed-bytes")
	b.ReportMetric(ioRatio, "plain/compressed-coldIO")
}

// BenchmarkAblationRLE quantifies the column-store twin: RLE on the sorted
// property column makes a PSO-clustered selection's property access nearly
// free.
func BenchmarkAblationRLE(b *testing.B) {
	w := workload(b)
	ts := append([]rdf.Triple(nil), w.DS.Graph.Triples...)
	rdf.PSO.Sort(ts)
	rows := rel.NewCap(3, len(ts))
	for _, t := range ts {
		rows.Append(uint64(t.P), uint64(t.S), uint64(t.O))
	}
	build := func(compress bool) (*colstore.Engine, *colstore.Table) {
		store := simio.NewStore(simio.Config{Machine: simio.MachineB(), PoolBytes: 8 << 30})
		eng := colstore.NewEngine(store)
		t, err := eng.CreateTable("triples", rows, compress)
		if err != nil {
			b.Fatal(err)
		}
		return eng, t
	}
	engC, tC := build(true)
	engP, tP := build(false)

	coldSelectIO := func(eng *colstore.Engine, t *colstore.Table) float64 {
		eng.Store.DropCaches()
		eng.Store.Clock().Reset()
		eng.SelectEq(t.Cols[0], uint64(w.Cat.Consts.Type))
		return eng.Store.Clock().IO().Seconds()
	}
	b.ResetTimer()
	var sizeRatio float64
	for i := 0; i < b.N; i++ {
		sizeRatio = float64(tP.Cols[0].DiskBytes()) / float64(tC.Cols[0].DiskBytes())
		// Touch both so the work is comparable even though the select on
		// the sorted column reads only the qualifying range.
		coldSelectIO(engP, tP)
		coldSelectIO(engC, tC)
	}
	b.ReportMetric(sizeRatio, "plain/RLE-bytes")
}

// BenchmarkAblationCStoreBuffer quantifies the restrictive-buffer effect of
// Section 3: with C-Store's small pool, q3 re-reads data on every (hot!)
// run; with an ample pool the hot run does no I/O at all.
func BenchmarkAblationCStoreBuffer(b *testing.B) {
	w := workload(b)
	build := func(pool int64) *colstore.Engine {
		store := simio.NewStore(simio.Config{Machine: simio.MachineA(), PoolBytes: pool, PageSize: 4096})
		eng := colstore.NewEngine(store)
		eng.PageAtATime = true
		return eng
	}
	hotReadMB := func(pool int64) float64 {
		eng := build(pool)
		db, err := core.LoadColVertRestricted(eng, w.DS.Graph, w.Cat)
		if err != nil {
			b.Fatal(err)
		}
		q := core.Query{ID: core.Q3}
		if _, err := db.Run(q); err != nil { // warm-up
			b.Fatal(err)
		}
		eng.Store.ResetStats()
		if _, err := db.Run(q); err != nil {
			b.Fatal(err)
		}
		return float64(eng.Store.Stats().BytesRead) / 1e6
	}
	b.ResetTimer()
	var small, big float64
	for i := 0; i < b.N; i++ {
		small = hotReadMB(int64(w.DS.Graph.Len()) * 3) // the C-Store pool
		big = hotReadMB(8 << 30)                       // ample memory
	}
	b.ReportMetric(small, "hotMBread-smallpool")
	b.ReportMetric(big, "hotMBread-bigpool")
}
