// Observability walkthrough: run a profiled query and read its EXPLAIN
// ANALYZE tree (measured rows and simulated charges beside the planner's
// estimates), trip the slow-query log, trace a request end to end and
// walk its span tree, read the workload registry's per-fingerprint
// aggregates and cardinality-drift feedback, and scrape the Prometheus
// text exposition — the whole surface swanserve offers at
// /query?profile=1, /debug/slow, /debug/traces, /debug/workload and
// /metrics, driven here in-process.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"blackswan/internal/bench"
	"blackswan/internal/core"
	"blackswan/internal/datagen"
	"blackswan/internal/rdf"
	"blackswan/internal/serve"
	"blackswan/internal/trace"
)

func main() {
	// 1. One workload, four schemes, and a service with the slow-query log
	// armed: everything at or above 1µs is recorded (deliberately hair-
	// trigger so the walkthrough always has entries to show).
	w, err := bench.NewWorkload(datagen.Config{
		Triples: 20_000, Properties: 40, Interesting: 28, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	systems, err := bench.BGPSystems(w)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := bench.NewService(w, systems, serve.Config{
		SlowQueryThreshold: time.Microsecond, SlowLogSize: 8,
		Tracer: trace.New(trace.Config{SampleRate: 1, Service: "observe"}),
	})
	if err != nil {
		log.Fatal(err)
	}
	term := func(id rdf.ID) string { return svc.Dict().Term(id).String() }

	// 2. EXPLAIN ANALYZE: execute with ExecOpts{Profile: true}. The rows
	// come back byte-identical to an unprofiled run; the profile tree rides
	// along — rows= is measured, est= is the optimizer's estimate, cpu= and
	// io= are the simulated charges, host= the wall time per operator.
	text := `SELECT ?s ?t WHERE {
		?s <barton/origin> <barton/info:marcorg/DLC> .
		?s <barton/records> ?x .
		?x <barton/type> ?t
	}`
	ctx := context.Background()
	for _, name := range svc.Systems() {
		res, err := svc.ExecTextOpts(ctx, text, name, serve.ExecOpts{Profile: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s: %d rows in %v ==\n", name, res.Rows.Len(),
			res.Latency.Round(time.Microsecond))
		fmt.Println(core.FormatAnalyze(res.Profile, term))
	}

	// 3. A few more queries — some profiled, some not — to give the slow
	// log and the counters traffic worth looking at.
	more := bench.DistinctQueryTexts(w, 3, 4)
	for i, q := range more {
		if _, err := svc.ExecTextOpts(ctx, q, svc.Systems()[i%len(svc.Systems())],
			serve.ExecOpts{Profile: i%2 == 0}); err != nil {
			log.Fatal(err)
		}
	}

	// 4. The slow-query log, newest first: every entry carries the plan it
	// ran, and profiled entries keep their full per-operator tree.
	fmt.Println("== slow-query log (newest first) ==")
	for _, e := range svc.SlowQueries() {
		profiled := ""
		if e.Profile != nil {
			profiled = fmt.Sprintf(" [profiled: root %s, %d row(s)]", e.Profile.Op, e.Profile.Rows)
		}
		fmt.Printf("%-18s %5d rows in %8v  %.60s%s\n",
			e.System, e.Rows, e.Latency.Round(time.Microsecond), e.Query, profiled)
	}

	// 5. Request tracing: TraceStart opens the request-scoped trace (the
	// HTTP handler does this from the traceparent header); the context
	// threads it through plan-cache lookup, compilation, admission wait and
	// execution, and a profiled run bridges every operator into a span.
	// finish commits the trace to the ring /debug/traces serves.
	tctx, tr, finish := svc.TraceStart(ctx, "query", "")
	res, err := svc.ExecTextOpts(tctx, text, svc.Systems()[0], serve.ExecOpts{Profile: true})
	finish(err)
	if err != nil {
		log.Fatal(err)
	}
	rec, ok := svc.Tracer().Get(tr.ID().String())
	if !ok {
		log.Fatal("traced query missing from the ring")
	}
	fmt.Printf("== trace %s (%d rows, %d spans) ==\n", rec.TraceID, res.Rows.Len(), len(rec.Spans))
	printSpanTree(rec, rec.RootSpan, 0)

	// 6. The workload registry — what /debug/workload serves. Every
	// execution above was folded in under its fingerprint (the hash of the
	// canonical query text, echoed in each Result): counts, cache hits,
	// rows, per-system splits, latency quantiles from the mergeable GK
	// sketch, and — for profiled runs — per-operator est-vs-actual
	// q-errors, the cardinality-drift feedback that says which estimates
	// to distrust.
	ws := svc.Workload(serve.WorkloadQuery{By: "time"})
	fmt.Printf("\n== workload registry: %d fingerprints, %d observations (eps %g) ==\n",
		ws.Fingerprints, ws.Observations, ws.Epsilon)
	for _, e := range ws.Entries {
		fmt.Printf("%s  n=%-3d hits=%-3d rows=%-5d p50=%-8v p99=%-8v  %.48s\n",
			e.Fingerprint, e.Count, e.CacheHits, e.Rows,
			e.Latency.P50.Round(time.Microsecond), e.Latency.P99.Round(time.Microsecond),
			e.Query)
		for _, op := range e.Ops {
			if op.MaxQError >= 2 { // only the drifted operators
				fmt.Printf("    drift: %-28s est=%-8.0f actual=%-6d qerr(mean %.1f, max %.1f)\n",
					op.Op, op.LastEst, op.LastRows, op.MeanQError, op.MaxQError)
			}
		}
	}

	// 7. The Prometheus scrape — what a monitoring stack would collect from
	// GET /metrics. Shown here filtered to the counters this run moved.
	var b strings.Builder
	if err := svc.WriteMetrics(&b); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== /metrics (excerpt) ==")
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "blackswan_queries_total") ||
			strings.HasPrefix(line, "blackswan_profiled_executions_total") ||
			strings.HasPrefix(line, "blackswan_slow_queries_total") ||
			strings.HasPrefix(line, "blackswan_system_queries_total") ||
			strings.HasPrefix(line, "blackswan_plan_cache_misses_total") ||
			strings.HasPrefix(line, "blackswan_traces_kept_total") ||
			strings.HasPrefix(line, "blackswan_workload_observations_total") ||
			strings.HasPrefix(line, "blackswan_workload_latency_seconds{") ||
			strings.HasPrefix(line, "blackswan_build_info") ||
			strings.HasPrefix(line, "blackswan_go_goroutines") {
			fmt.Println(line)
		}
	}

	os.Exit(0)
}

// printSpanTree renders a recorded trace as an indented tree, children
// under their parent span, each with its duration and attributes.
func printSpanTree(rec trace.Recorded, parent string, depth int) {
	for _, sp := range rec.Spans {
		if sp.SpanID != parent {
			continue
		}
		attrs := ""
		for _, a := range sp.Attrs {
			attrs += fmt.Sprintf(" %s=%v", a.Key, a.Value)
		}
		fmt.Printf("%s%s (%v)%s\n", strings.Repeat("  ", depth), sp.Name,
			sp.Duration.Round(time.Microsecond), attrs)
		for _, child := range rec.Spans {
			if child.Parent == sp.SpanID {
				printSpanTree(rec, child.SpanID, depth+1)
			}
		}
	}
}
