// Serving-layer walkthrough: wrap all four loaded schemes behind one
// serve.Service, prepare a query once, execute it everywhere, and watch
// the plan cache turn repeat traffic into pure execution — plus a request
// timeout cancelling mid-plan.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"blackswan/internal/bench"
	"blackswan/internal/datagen"
	"blackswan/internal/serve"
)

func main() {
	// 1. One workload, four schemes (both engines × both storage schemes).
	w, err := bench.NewWorkload(datagen.Config{
		Triples: 20_000, Properties: 40, Interesting: 28, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	systems, err := bench.BGPSystems(w)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The service: plan cache, admission control, request contexts.
	svc, err := bench.NewService(w, systems, serve.Config{
		MaxConcurrent: 4, CacheSize: 64,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Prepare once — parse and join ordering happen here — then execute
	// the immutable, scheme-independent handle on every target.
	text := `SELECT ?s ?t WHERE {
		?s <barton/origin> <barton/info:marcorg/DLC> .
		?s <barton/records> ?x .
		?x <barton/type> ?t
	}`
	prepared, err := svc.Prepare(text)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared %q\n  columns %v, estimated cost %.0f\n\n",
		prepared.Text, prepared.Compiled.Cols, prepared.Compiled.Cost)

	ctx := context.Background()
	for _, name := range svc.Systems() {
		res, err := svc.Exec(ctx, prepared, name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %5d rows in %8v (cached plan: %v)\n",
			name, res.Rows.Len(), res.Latency.Round(time.Microsecond), res.Cached)
	}

	// 4. Repeat traffic through the text path hits the cache: the second
	// call skips parsing and join ordering (see the miss counter hold).
	for i := 0; i < 3; i++ {
		if _, err := svc.ExecText(ctx, text, svc.Systems()[0]); err != nil {
			log.Fatal(err)
		}
	}
	st := svc.Stats()
	fmt.Printf("\nafter repeats: %d queries served, cache %d hits / %d misses (ratio %.2f)\n",
		st.Queries, st.Cache.Hits, st.Cache.Misses, st.Cache.HitRatio())

	// 5. A request deadline cancels execution at the next operator
	// boundary — the serving layer never wedges on a slow query.
	tctx, cancel := context.WithTimeout(ctx, time.Nanosecond)
	defer cancel()
	if _, err := svc.ExecText(tctx, text, svc.Systems()[0]); err != nil {
		fmt.Printf("1ns deadline: %v\n", err)
	}

	// 6. Decoded rows, as the HTTP front-end returns them.
	res, err := svc.ExecText(ctx, text, svc.Systems()[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsample rows:")
	for _, row := range svc.DecodeRows(res, 3) {
		fmt.Printf("  %v\n", row)
	}
}
