// Inference: the RDF-application pattern behind the paper's new query q8 —
// "return all subjects that share objects with a given subject". Queries of
// this shape join on objects (join pattern B of the query space), which no
// clustering of either storage scheme supports with a merge join; the paper
// uses q8 as a "black swan" for the vertically-partitioned scheme.
//
// The example finds items related to a chosen catalog item by shared values
// and shows the q8 cost on both schemes.
package main

import (
	"fmt"
	"log"
	"sort"

	"blackswan/internal/bench"
	"blackswan/internal/core"
	"blackswan/internal/datagen"
	"blackswan/internal/rdf"
	"blackswan/internal/simio"
)

func main() {
	w, err := bench.NewWorkload(datagen.Config{
		Triples: 200_000, Properties: 222, Interesting: 28, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	dict := w.DS.Graph.Dict

	triple, err := bench.NewMonetTriple(w, rdf.SPO, simio.MachineB())
	if err != nil {
		log.Fatal(err)
	}
	vert, err := bench.NewMonetVert(w, simio.MachineB())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Subjects sharing objects with <%s> (query q8):\n\n",
		dict.Term(w.Cat.Consts.Conferences).Value)
	for _, sys := range []*bench.System{triple, vert} {
		t, res, err := sys.Measure(core.Query{ID: core.Q8}, bench.Cold)
		if err != nil {
			log.Fatal(err)
		}
		// q8 returns a bag: one row per shared (subject, object) pair.
		// Rank related subjects by how many values they share.
		counts := map[uint64]int{}
		for i := 0; i < res.Len(); i++ {
			counts[res.Row(i)[0]]++
		}
		type related struct {
			subj   uint64
			shared int
		}
		rs := make([]related, 0, len(counts))
		for s, n := range counts {
			rs = append(rs, related{s, n})
		}
		sort.Slice(rs, func(i, j int) bool {
			if rs[i].shared != rs[j].shared {
				return rs[i].shared > rs[j].shared
			}
			return rs[i].subj < rs[j].subj
		})
		fmt.Printf("%s: %d related subjects (cold real %.3fs)\n", sys.Name, len(counts), t.Real.Seconds())
		for i := 0; i < len(rs) && i < 5; i++ {
			fmt.Printf("  %-28s shares %d value(s)\n", dict.Term(rdf.ID(rs[i].subj)).Value, rs[i].shared)
		}
		fmt.Println()
	}
	fmt.Println("Join pattern B (object = object) cannot use either scheme's clustering:")
	fmt.Println("the vertically-partitioned scheme additionally visits every property")
	fmt.Println("table twice, which is why the paper calls q8 one of its black swans.")
}
