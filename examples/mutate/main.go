// Live-mutation walkthrough: apply INSERT DATA / DELETE DATA through the
// serving layer's write path, watch each commit install a new immutable
// dataset version over delta overlays, trigger a compacting rebuild of
// all four schemes, record the whole run as a history and hand it to the
// black-box snapshot-isolation checker — then arm the fault injector and
// watch the same checker reject a stale snapshot. Everything swanserve
// offers at POST /update and GET /debug/versions, driven here in-process.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"blackswan/internal/bench"
	"blackswan/internal/datagen"
	"blackswan/internal/serve"
	"blackswan/internal/verify"
)

func main() {
	// 1. One workload, four schemes, one service, and the mutator wired
	// with a deliberately tiny compaction threshold so the walkthrough
	// reaches a rebuild within a handful of commits.
	w, err := bench.NewWorkload(datagen.Config{
		Triples: 20_000, Properties: 40, Interesting: 28, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	systems, err := bench.BGPSystems(w)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := bench.NewService(w, systems, serve.Config{})
	if err != nil {
		log.Fatal(err)
	}
	m, err := bench.NewMutator(svc, w, systems, 4)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// 2. INSERT DATA: one transactional commit, one new dataset version.
	// The response names both the installed version and the version the
	// commit was applied against — the write half of snapshot isolation.
	ur, err := m.ApplyUpdate(ctx, `INSERT DATA {
		<demo/s1> <demo/flag> "one" .
		<demo/s2> <demo/flag> "two"
	}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("insert: version %d over base %d, +%d triples (delta %d adds)\n",
		ur.Version, ur.BaseVersion, ur.Inserted, ur.DeltaAdds)

	// 3. Readers see the new state on every scheme, and every result is
	// stamped with the version it executed on. Until compaction the new
	// triples live in a delta overlay on top of the immutable base tables.
	query := `SELECT ?s ?o WHERE { ?s <demo/flag> ?o }`
	for _, name := range svc.Systems() {
		res, err := svc.ExecText(ctx, query, name)
		if err != nil {
			log.Fatal(err)
		}
		var keys []string
		for _, row := range svc.DecodeRows(res, -1) {
			keys = append(keys, row[0])
		}
		fmt.Printf("  %-18s version %d: %s\n", name, res.Version, strings.Join(keys, " "))
	}

	// 4. DELETE DATA is the same shape: a tombstone in the delta, a new
	// version, readers never blocked.
	ur, err = m.ApplyUpdate(ctx, `DELETE DATA { <demo/s2> <demo/flag> "two" }`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := svc.ExecText(ctx, query, svc.DefaultSystem())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delete: version %d, -%d triples; %d rows remain\n",
		ur.Version, ur.Deleted, res.Rows.Len())

	// 5. Commit until the delta reaches the compaction threshold: that
	// commit folds base and delta into a from-scratch rebuild of all four
	// schemes, recomputing statistics and the cardinality estimator.
	for i := 0; !ur.Compacted; i++ {
		ur, err = m.ApplyUpdate(ctx, fmt.Sprintf(`INSERT DATA { <demo/extra%d> <demo/flag> "x" }`, i))
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("compaction: version %d rebuilt all schemes at %d triples (delta folded to %d/%d)\n",
		ur.Version, ur.Triples, ur.DeltaAdds, ur.DeltaDels)

	// 6. The version history — what swanserve serves at /debug/versions.
	fmt.Println("\nversion history (newest first):")
	for _, v := range svc.Versions() {
		live := ""
		if v.Live {
			live = "  <- serving"
		}
		fmt.Printf("  v%-3d %-10s triples=%-6d delta=+%d/-%d%s\n",
			v.Version, v.Kind, v.Triples, v.DeltaAdds, v.DeltaDels, live)
	}

	// 7. The black-box checker: record every write (as reported by the
	// update response) and every read (as observed rows tagged with the
	// result's version) and ask whether some serial order of the commits
	// explains every read — snapshot isolation, checked in polynomial
	// time, knowing nothing about the engine.
	rec := verify.NewRecorder(svc.Version(), readKeys(ctx, svc, query))
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("demo/hist%d", i)
		ur, err = m.ApplyUpdate(ctx, fmt.Sprintf(`INSERT DATA { <%s> <demo/flag> "h" }`, key))
		if err != nil {
			log.Fatal(err)
		}
		rec.Write(verify.WriteTxn{
			Client: "w", Seq: i, Base: ur.BaseVersion, Version: ur.Version,
			Put: []string{"<" + key + ">"},
		})
		res, err := svc.ExecText(ctx, query, svc.Systems()[i%4])
		if err != nil {
			log.Fatal(err)
		}
		rec.Read(verify.ReadTxn{
			Client: "r", Seq: i, Version: res.Version,
			Present: readRows(svc, res), Complete: true,
		})
	}
	fmt.Printf("\nchecker on a clean history: %d violations\n", len(verify.Check(rec.History())))

	// 8. Prove the empty verdict means something: arm the fault injector
	// so the next commit installs its version over the PREVIOUS snapshot's
	// tables. The very next read claims the new version but returns the
	// old state — and the checker catches it.
	rec = verify.NewRecorder(svc.Version(), readKeys(ctx, svc, query))
	m.SetFaultEvery(1)
	ur, err = m.ApplyUpdate(ctx, `INSERT DATA { <demo/ghost> <demo/flag> "g" }`)
	if err != nil {
		log.Fatal(err)
	}
	rec.Write(verify.WriteTxn{
		Client: "w", Seq: 0, Base: ur.BaseVersion, Version: ur.Version,
		Put: []string{"<demo/ghost>"},
	})
	res, err = svc.ExecText(ctx, query, svc.DefaultSystem())
	if err != nil {
		log.Fatal(err)
	}
	rec.Read(verify.ReadTxn{
		Client: "r", Seq: 0, Version: res.Version,
		Present: readRows(svc, res), Complete: true,
	})
	m.SetFaultEvery(0)
	for _, v := range verify.Check(rec.History()) {
		fmt.Printf("checker on the faulty history: %s\n", v)
	}
}

// readKeys runs the flag query on the default system and returns the
// present keys — the checker's initial state.
func readKeys(ctx context.Context, svc *serve.Service, query string) []string {
	res, err := svc.ExecText(ctx, query, svc.DefaultSystem())
	if err != nil {
		log.Fatal(err)
	}
	return readRows(svc, res)
}

// readRows decodes the first column of a flag-query result.
func readRows(svc *serve.Service, res *serve.Result) []string {
	rows := svc.DecodeRows(res, -1)
	keys := make([]string, 0, len(rows))
	for _, row := range rows {
		keys = append(keys, row[0])
	}
	return keys
}
