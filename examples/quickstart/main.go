// Quickstart: build a small RDF graph, load it into both storage schemes on
// the column-store engine, run a benchmark query and a custom pattern query,
// and print decoded results.
package main

import (
	"fmt"
	"log"

	"blackswan/internal/colstore"
	"blackswan/internal/core"
	"blackswan/internal/rdf"
	"blackswan/internal/simio"
)

func main() {
	// 1. Build a graph. Terms are interned into a dictionary; storage and
	// queries operate on integer identifiers.
	g := rdf.NewGraph()
	iri, lit := rdf.NewIRI, rdf.NewLiteral
	g.Add(iri("book/moby-dick"), iri("type"), iri("Text"))
	g.Add(iri("book/moby-dick"), iri("language"), iri("lang/eng"))
	g.Add(iri("book/moby-dick"), iri("title"), lit("Moby-Dick"))
	g.Add(iri("book/candide"), iri("type"), iri("Text"))
	g.Add(iri("book/candide"), iri("language"), iri("lang/fre"))
	g.Add(iri("book/candide"), iri("title"), lit("Candide"))
	g.Add(iri("cd/goldberg"), iri("type"), iri("Audio"))
	g.Add(iri("cd/goldberg"), iri("title"), lit("Goldberg Variations"))
	// The paper's fixed vocabulary (every benchmark query binds these).
	g.Add(iri("book/candide"), iri("origin"), iri("DLC"))
	g.Add(iri("book/moby-dick"), iri("records"), iri("cd/goldberg"))
	g.Add(iri("book/moby-dick"), iri("Point"), lit("end"))
	g.Add(iri("book/moby-dick"), iri("Encoding"), lit("utf-8"))
	g.Add(iri("conferences"), iri("topic"), lit("databases"))
	g.Normalize()

	d := g.Dict
	consts := core.Constants{
		Type: d.InternIRI("type"), Records: d.InternIRI("records"),
		Origin: d.InternIRI("origin"), Language: d.InternIRI("language"),
		Point: d.InternIRI("Point"), Encoding: d.InternIRI("Encoding"),
		Text: d.InternIRI("Text"), DLC: d.InternIRI("DLC"),
		French: d.InternIRI("lang/fre"), End: d.InternLiteral("end"),
		Conferences: d.InternIRI("conferences"),
	}
	interesting := []rdf.ID{consts.Type, consts.Records, consts.Origin,
		consts.Language, consts.Point, consts.Encoding, d.InternIRI("title")}
	cat, err := core.CatalogFromGraph(g, consts, interesting)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Load both schemes on simulated machine B.
	store := func() *simio.Store {
		return simio.NewStore(simio.Config{Machine: simio.MachineB(), PoolBytes: 1 << 30})
	}
	triple, err := core.LoadColTriple(colstore.NewEngine(store()), g, cat, rdf.PSO)
	if err != nil {
		log.Fatal(err)
	}
	vert, err := core.LoadColVert(colstore.NewEngine(store()), g, cat)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Benchmark query q1: instance counts per class.
	for _, db := range []core.Database{triple, vert} {
		res, err := db.Run(core.Query{ID: core.Q1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("q1 on %s:\n", db.Label())
		for i := 0; i < res.Len(); i++ {
			row := res.Row(i)
			fmt.Printf("  %-10s %d\n", d.Term(rdf.ID(row[0])).Value, row[1])
		}
	}

	// 4. A custom pattern query via the generic BGP API: French texts and
	// their titles — (?b type Text)(?b language fre)(?b title ?t).
	res, vars := core.EvalBGP(triple, []core.TriplePattern{
		core.Pat(core.V("b"), core.C(consts.Type), core.C(consts.Text)),
		core.Pat(core.V("b"), core.C(consts.Language), core.C(consts.French)),
		core.Pat(core.V("b"), core.C(d.InternIRI("title")), core.V("t")),
	})
	fmt.Printf("French texts (vars %v):\n", vars)
	for i := 0; i < res.Len(); i++ {
		row := res.Row(i)
		fmt.Printf("  %s — %q\n", d.Term(rdf.ID(row[0])).Value, d.Term(rdf.ID(row[1])).Value)
	}
}
