// Scaleup: the Section 4.4 experiment as an application scenario. Real RDF
// schemas grow: ontologies add sub-properties, federated data sets multiply
// predicates. This example takes one data set, splits its properties
// 222 → 1000 while keeping the triples fixed, and shows how the two storage
// schemes diverge on the full-scale aggregation q2* — the paper's Figure 7
// crossover.
package main

import (
	"fmt"
	"log"
	"runtime"

	"blackswan/internal/bench"
	"blackswan/internal/core"
	"blackswan/internal/datagen"
	"blackswan/internal/rdf"
	"blackswan/internal/rel"
	"blackswan/internal/simio"
)

func main() {
	w, err := bench.NewWorkload(datagen.Config{
		Triples: 150_000, Properties: 222, Interesting: 28, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("q2* (aggregate over ALL properties), cold runs, MonetDB profile:")
	fmt.Printf("%12s %14s %14s\n", "#properties", "triple (s)", "vert (s)")

	q := core.Query{ID: core.Q2, Star: true}
	for _, target := range []int{222, 400, 600, 800, 1000} {
		ds := w.DS
		if target > 222 {
			ds, err = datagen.SplitProperties(w.DS, target, 99)
			if err != nil {
				log.Fatal(err)
			}
		}
		cat, err := bench.CatalogOf(ds)
		if err != nil {
			log.Fatal(err)
		}
		wk := &bench.Workload{DS: ds, Cat: cat}
		triple, err := bench.NewMonetTriple(wk, rdf.PSO, simio.MachineB())
		if err != nil {
			log.Fatal(err)
		}
		vert, err := bench.NewMonetVert(wk, simio.MachineB())
		if err != nil {
			log.Fatal(err)
		}
		tt, _, err := triple.Measure(q, bench.Cold)
		if err != nil {
			log.Fatal(err)
		}
		vt, _, err := vert.Measure(q, bench.Cold)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12d %14.4f %14.4f\n", len(cat.AllProps), tt.Real.Seconds(), vt.Real.Seconds())
	}
	fmt.Println("\nThe triple-store's cost is set by the (fixed) triple count; the")
	fmt.Println("vertically-partitioned scheme pays per table and degrades as the")
	fmt.Println("schema grows — the data-dependent logical schema the paper warns about.")

	// Every query above ran through the shared declarative plan layer; the
	// same plans can fan their per-property scans out over a worker pool.
	// Results are byte-identical — only host time changes.
	vert, err := bench.NewMonetVert(w, simio.MachineB())
	if err != nil {
		log.Fatal(err)
	}
	seq, err := vert.DB.Run(q)
	if err != nil {
		log.Fatal(err)
	}
	vert.SetParallel(runtime.NumCPU())
	par, err := vert.DB.Run(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nparallel plan execution (%d workers): %d rows, identical to sequential: %v\n",
		runtime.NumCPU(), par.Len(), rel.Equal(seq, par))
}
