// BGP query compiler walkthrough: state queries as text, compile them with
// stats-driven join ordering, and run the same plan on a row-store and a
// column-store scheme — any basic graph pattern, not just the paper's
// twelve queries.
package main

import (
	"fmt"
	"log"

	"blackswan/internal/bgp"
	"blackswan/internal/colstore"
	"blackswan/internal/core"
	"blackswan/internal/datagen"
	"blackswan/internal/rdf"
	"blackswan/internal/rel"
	"blackswan/internal/rowstore"
	"blackswan/internal/simio"
)

func main() {
	// 1. Generate a small Barton-shaped data set and derive its catalog.
	ds, err := datagen.Generate(datagen.Config{
		Triples: 20_000, Properties: 40, Interesting: 28, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	v := ds.Vocab
	consts := core.Constants{
		Type: v.Type, Records: v.Records, Origin: v.Origin, Language: v.Language,
		Point: v.Point, Encoding: v.Encoding, Text: v.Text, DLC: v.DLC,
		French: v.French, End: v.End, Conferences: v.Conferences,
	}
	cat, err := core.CatalogFromGraph(ds.Graph, consts, ds.Interesting)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Load two schemes: the PSO-clustered triple-store on the row
	// engine, the vertically-partitioned scheme on the column engine.
	store := func() *simio.Store {
		return simio.NewStore(simio.Config{Machine: simio.MachineB(), PoolBytes: 1 << 30})
	}
	triple, err := core.LoadRowTriple(rowstore.NewEngine(store()), ds.Graph, cat, rdf.PSO, rdf.AllOrders())
	if err != nil {
		log.Fatal(err)
	}
	vert, err := core.LoadColVert(colstore.NewEngine(store()), ds.Graph, cat)
	if err != nil {
		log.Fatal(err)
	}

	// 3. An estimator over the data set's statistics drives join ordering.
	est := bgp.NewEstimator(ds.Graph, cat.Interesting)

	// 4. Compile and run text queries: a snowflake join, one of the
	// paper's own queries, and the SPARQL-ward constructs — OPTIONAL (a
	// left outer join: every typed subject appears, with a NULL year when
	// it has no <pointInTime>), a numeric range FILTER, and ORDER BY with
	// LIMIT (value ordering with a deterministic, scheme-independent
	// prefix).
	texts := []string{
		`SELECT ?s ?t WHERE {
			?s <barton/origin> <barton/info:marcorg/DLC> .
			?s <barton/records> ?x .
			?x <barton/type> ?t .
			FILTER (?t != <barton/Text>)
		}`,
		`SELECT * WHERE {
			?s <barton/origin> <barton/info:marcorg/DLC> .
			OPTIONAL { ?s <barton/pointInTime> ?year . FILTER (?year >= 1900) }
		} ORDER BY ?year DESC ?s LIMIT 5`,
	}
	if q2, err := bgp.PaperText(core.Query{ID: core.Q2}, ds.Graph.Dict, consts); err == nil {
		texts = append(texts, q2)
	}

	for _, text := range texts {
		compiled, err := bgp.CompileText(text, ds.Graph.Dict, est)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query: %s\n", text)
		fmt.Printf("  estimated cost %.0f, columns %v\n", compiled.Cost, compiled.Cols)
		for _, step := range compiled.Order {
			fmt.Printf("  join order: %s\n", step)
		}
		var first *rel.Rel
		for _, src := range []core.PhysicalSource{triple, vert} {
			res, _, tr, err := core.ExecutePlan(src, compiled.Root, core.ExecOptions{})
			if err != nil {
				log.Fatal(err)
			}
			label := src.(core.Database).Label()
			fmt.Printf("  %-14s %5d rows (%d partition scans, %d joins)\n",
				label, res.Len(), tr.PartitionScans, len(tr.Joins))
			if first == nil {
				first = res
			}
		}
		// Decode a sample of the first scheme's rows; rdf.NoID cells are the
		// OPTIONAL construct's NULLs, count columns are plain numbers.
		for i := 0; i < first.Len() && i < 3; i++ {
			cells := make([]string, first.W)
			for j, v := range first.Row(i) {
				switch {
				case j < len(compiled.Cols) && compiled.Counts[compiled.Cols[j]]:
					cells[j] = fmt.Sprint(v)
				case rdf.ID(v) == rdf.NoID:
					cells[j] = "NULL"
				default:
					cells[j] = ds.Graph.Dict.Term(rdf.ID(v)).String()
				}
			}
			fmt.Printf("    sample: %v\n", cells)
		}
		fmt.Println()
	}
}
