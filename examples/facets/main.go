// Facets: the Longwell-style faceted browsing scenario that motivates the
// paper's benchmark. A library catalog UI shows, for the current selection,
// how many items each class and each property has — exactly the shapes of
// queries q1 ("count per type") and q2 ("count per property for Text
// items"). The example runs both facets on the triple-store and the
// vertically-partitioned scheme and compares the simulated cold-run cost.
package main

import (
	"fmt"
	"log"

	"blackswan/internal/bench"
	"blackswan/internal/core"
	"blackswan/internal/datagen"
	"blackswan/internal/rdf"
	"blackswan/internal/simio"
)

func main() {
	w, err := bench.NewWorkload(datagen.Config{
		Triples: 200_000, Properties: 222, Interesting: 28, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	dict := w.DS.Graph.Dict

	triple, err := bench.NewMonetTriple(w, rdf.PSO, simio.MachineB())
	if err != nil {
		log.Fatal(err)
	}
	vert, err := bench.NewMonetVert(w, simio.MachineB())
	if err != nil {
		log.Fatal(err)
	}

	// Facet 1: item counts per class (query q1).
	t, res, err := vert.Measure(core.Query{ID: core.Q1}, bench.Cold)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Class facet (top 8):")
	shown := 0
	// Results are sorted by class id; show the biggest counts instead.
	best := map[uint64]uint64{}
	for i := 0; i < res.Len(); i++ {
		best[res.Row(i)[0]] = res.Row(i)[1]
	}
	for shown < 8 && len(best) > 0 {
		var maxK, maxV uint64
		for k, v := range best {
			if v > maxV {
				maxK, maxV = k, v
			}
		}
		delete(best, maxK)
		fmt.Printf("  %-28s %7d items\n", dict.Term(rdf.ID(maxK)).Value, maxV)
		shown++
	}
	fmt.Printf("  (vertically-partitioned, cold: real %.3fs)\n\n", t.Real.Seconds())

	// Facet 2: property counts over Text items (query q2), on both schemes.
	for _, sys := range []*bench.System{triple, vert} {
		t, res, err := sys.Measure(core.Query{ID: core.Q2}, bench.Cold)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Property facet for Text items on %s (cold real %.3fs, %d facets):\n",
			sys.Name, t.Real.Seconds(), res.Len())
		for i := 0; i < res.Len() && i < 6; i++ {
			row := res.Row(i)
			fmt.Printf("  %-28s %7d\n", dict.Term(rdf.ID(row[0])).Value, row[1])
		}
		fmt.Println()
	}
	fmt.Println("Both schemes return identical facets; the cold-run cost differs with the scheme.")
}
