// Bulk-load walkthrough: serialize a Barton-shaped data set to N-Triples,
// load it back through the parallel ingest pipeline in both modes,
// verify the determinism contract against the sequential loader, and
// continue into the concurrent four-scheme build — the full Table 1
// pipeline ("bulk-load, dictionary-encode, load the schemes") at
// hardware parallelism.
package main

import (
	"bytes"
	"fmt"
	"log"
	"runtime"

	"blackswan/internal/bench"
	"blackswan/internal/colstore"
	"blackswan/internal/core"
	"blackswan/internal/datagen"
	"blackswan/internal/ingest"
	"blackswan/internal/rdf"
	"blackswan/internal/rowstore"
	"blackswan/internal/simio"
)

func main() {
	// 1. A data set, serialized to N-Triples — the dump a real deployment
	// would receive.
	ds, err := datagen.Generate(datagen.Config{
		Triples: 50_000, Properties: 60, Interesting: 28, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	var dump bytes.Buffer
	if err := rdf.WriteNTriples(&dump, ds.Graph); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dump: %d triples, %.1f MiB of N-Triples\n\n", ds.Graph.Len(), float64(dump.Len())/(1<<20))

	workers := runtime.NumCPU()

	// 2. The sequential baseline and the two parallel modes. Fast mode
	// interns into a sharded dictionary as it parses; deterministic mode
	// defers interning to the ordered assemble stage and reproduces the
	// sequential loader byte for byte.
	seq, err := rdf.ReadNTriples(bytes.NewReader(dump.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fast, fastStats, err := ingest.Load(bytes.NewReader(dump.Bytes()), ingest.Options{Workers: workers})
	if err != nil {
		log.Fatal(err)
	}
	det, detStats, err := ingest.Load(bytes.NewReader(dump.Bytes()), ingest.Options{Workers: workers, Deterministic: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fast mode: %.0f triples/sec (%d workers; scan %.0fms, parse %.0fms summed, assemble %.0fms)\n",
		fastStats.TriplesPerSec(), fastStats.Workers,
		fastStats.ScanBusy.Seconds()*1e3, fastStats.ParseBusy.Seconds()*1e3, fastStats.AssembleBusy.Seconds()*1e3)
	fmt.Printf("deterministic: %.0f triples/sec; byte-identical to the sequential loader: %v\n",
		detStats.TriplesPerSec(), rdf.GraphsIdentical(seq, det))
	fmt.Printf("fast mode dictionary: %d terms in %d shards, same totals as sequential: %v\n\n",
		fast.Dict.Len(), rdf.DefaultShards, fast.Dict.Len() == seq.Dict.Len() && fast.Dict.Bytes() == seq.Dict.Bytes())

	// 3. On to the schemes: one parallel per-property partition feeds four
	// concurrent builds. The re-ingested dump has its own identifier
	// space, so the catalog re-derives from the loaded graph.
	w, err := bench.WorkloadFromGraph(det)
	if err != nil {
		log.Fatal(err)
	}
	store := func() *simio.Store {
		return simio.NewStore(simio.Config{Machine: simio.MachineB(), PoolBytes: 1 << 30})
	}
	schemes, err := ingest.BuildSchemes(det, w.Cat, ingest.Engines{
		RowTriple: rowstore.NewEngine(store()),
		RowVert:   rowstore.NewEngine(store()),
		ColTriple: colstore.NewEngine(store()),
		ColVert:   colstore.NewEngine(store()),
	}, ingest.BuildOptions{Workers: workers, Cluster: rdf.PSO, Secondaries: rdf.AllOrders()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("four schemes built concurrently (partition %.0fms):\n", schemes.PartitionTime.Seconds()*1e3)
	for label, d := range schemes.BuildTimes {
		fmt.Printf("  %-20s %6.0fms\n", label, d.Seconds()*1e3)
	}

	// 4. Prove the loaded schemes answer queries — q1 on all four.
	q := core.Query{ID: core.Q1}
	for _, db := range []core.Database{schemes.RowTriple, schemes.RowVert, schemes.ColTriple, schemes.ColVert} {
		res, err := db.Run(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s q1 -> %d rows\n", db.Label(), res.Len())
	}
}
